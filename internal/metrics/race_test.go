package metrics

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotConsistentUnderConcurrentWrites hammers counters and
// histograms from many goroutines while snapshotting in a tight loop,
// asserting every snapshot's histograms are internally consistent:
// Count == Σ bucket counts and Sum == Count (each observation is 1.0).
// Before Snapshot became the single lock-ordered path this failed under
// -race and could surface Count/Counts skew.
func TestSnapshotConsistentUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_gauge")
	h := r.Histogram("hammer_seconds", LinearBounds(0.5, 0.5, 4))

	const writers = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				c.Inc()
				g.Add(1)
				h.Observe(1.0)
			}
		}()
	}

	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		for _, hv := range s.Histograms {
			var sum int64
			for _, n := range hv.Counts {
				sum += n
			}
			if sum != hv.Count {
				t.Fatalf("snapshot %d: histogram %q Σ buckets %d != count %d",
					i, hv.Name, sum, hv.Count)
			}
			if hv.Sum != float64(hv.Count) {
				t.Fatalf("snapshot %d: histogram %q sum %g != count %d (all observations are 1.0)",
					i, hv.Name, hv.Sum, hv.Count)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: the final snapshot must agree with the instruments.
	s := r.Snapshot()
	if got, want := s.Counters[0].Value, c.Value(); got != want {
		t.Errorf("final counter snapshot %d != live value %d", got, want)
	}
	if got, want := s.Histograms[0].Count, h.Count(); got != want {
		t.Errorf("final histogram snapshot count %d != live count %d", got, want)
	}
}

// TestWriteOpenMetricsUnderConcurrentWrites scrapes the OpenMetrics
// endpoint shape while writers are active; every exposition must lint
// clean.
func TestWriteOpenMetricsUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scrape_seconds", ExponentialBounds(0.001, 10, 4))
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			h.Observe(0.02)
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteOpenMetrics(&sb); err != nil {
			t.Fatalf("WriteOpenMetrics: %v", err)
		}
		if _, err := ValidateOpenMetrics(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("scrape %d failed validation: %v\n%s", i, err, sb.String())
		}
	}
	stop.Store(true)
	wg.Wait()
}
