package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from
// many goroutines; run under -race this is the registry's concurrency
// contract (make test / the campaign acceptance gate).
func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hits")
			g := reg.Gauge("level")
			h := reg.Histogram("lat", []float64{1, 2, 4})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 6))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("lat", []float64{1, 2, 4}).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: upper bounds
// are inclusive, the extra trailing bucket catches overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 1} // (-inf,1] (1,2] (2,4] (4,+inf)
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 17 {
		t.Fatalf("sum = %g, want 17", h.Sum())
	}
}

// TestSnapshotDeterministic: two snapshots with no intervening writes
// must be deeply equal and encode to identical bytes (sorted names, no
// map-order leakage).
func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		reg.Counter("c_" + name).Add(3)
		reg.Gauge("g_" + name).Set(1.5)
		reg.Histogram("h_"+name, []float64{1, 10}).Observe(2)
	}
	s1, s2 := reg.Snapshot(), reg.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	var b1, b2 bytes.Buffer
	if err := reg.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSON exports of identical state differ")
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON does not round-trip: %v", err)
	}
	if !sorted(decoded.Counters, func(c CounterValue) string { return c.Name }) {
		t.Fatal("counters not sorted by name")
	}
}

func sorted[T any](xs []T, key func(T) string) bool {
	for i := 1; i < len(xs); i++ {
		if key(xs[i-1]) > key(xs[i]) {
			return false
		}
	}
	return true
}

// TestRegistryReuseAndMismatch: same name returns the same instrument;
// cross-kind reuse and histogram layout changes are programming errors
// that panic.
func TestRegistryReuseAndMismatch(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if reg.Histogram("h", []float64{1, 2}) != reg.Histogram("h", []float64{1, 2}) {
		t.Fatal("Histogram not idempotent")
	}
	mustPanic(t, "counter as gauge", func() { reg.Gauge("x") })
	mustPanic(t, "histogram bounds mismatch", func() { reg.Histogram("h", []float64{1, 3}) })
	mustPanic(t, "unsorted bounds", func() { reg.Histogram("bad", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestBoundsHelpers pins the two bucket-layout generators.
func TestBoundsHelpers(t *testing.T) {
	if got, want := LinearBounds(5, 5, 3), []float64{5, 10, 15}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LinearBounds = %v, want %v", got, want)
	}
	if got, want := ExponentialBounds(0.5, 2, 4), []float64{0.5, 1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ExponentialBounds = %v, want %v", got, want)
	}
}

// TestWriteText spot-checks the flat text exposition.
func TestWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs").Add(2)
	reg.Gauge("rate").Set(3.5)
	h := reg.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"runs 2\n", "rate 3.5\n",
		"h_bucket{le=1} 1\n", "h_bucket{le=2} 1\n", "h_bucket{le=+Inf} 2\n",
		"h_sum 3.5\n", "h_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
}
