package traffic

import (
	"testing"

	"nocalert/internal/rng"
	"nocalert/internal/topology"
)

func allPatterns(t *testing.T) []Pattern {
	t.Helper()
	names := []string{"uniform", "transpose", "bitcomplement", "bitreverse", "shuffle", "neighbor", "hotspot"}
	out := make([]Pattern, len(names))
	for i, n := range names {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		out[i] = p
	}
	return out
}

// TestNoSelfTraffic: no pattern ever returns the source as destination.
func TestNoSelfTraffic(t *testing.T) {
	g := rng.New(1, 0)
	for _, m := range []topology.Mesh{topology.NewMesh(4, 4), topology.NewMesh(3, 5), topology.NewMesh(8, 8)} {
		for _, p := range allPatterns(t) {
			for src := 0; src < m.Nodes(); src++ {
				for i := 0; i < 20; i++ {
					d := p.Dest(m, src, g)
					if d == src {
						t.Fatalf("%s: self traffic at node %d on %dx%d", p.Name(), src, m.W, m.H)
					}
					if d < 0 || d >= m.Nodes() {
						t.Fatalf("%s: destination %d out of range", p.Name(), d)
					}
				}
			}
		}
	}
}

func TestUnknownPattern(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestTransposeMapping(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(2, 0)
	if d := (Transpose{}).Dest(m, m.NodeAt(1, 3), g); d != m.NodeAt(3, 1) {
		t.Fatalf("transpose(1,3) = %d", d)
	}
	// Diagonal falls back to some other node.
	if d := (Transpose{}).Dest(m, m.NodeAt(2, 2), g); d == m.NodeAt(2, 2) {
		t.Fatal("diagonal self traffic")
	}
}

func TestBitComplementMapping(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(2, 0)
	if d := (BitComplement{}).Dest(m, 3, g); d != 12 {
		t.Fatalf("complement(3) = %d", d)
	}
}

func TestBitReverseMapping(t *testing.T) {
	m := topology.NewMesh(4, 4) // 16 nodes, 4 bits
	g := rng.New(2, 0)
	if d := (BitReverse{}).Dest(m, 1, g); d != 8 {
		t.Fatalf("reverse(0001) = %d, want 8", d)
	}
	// Non-power-of-two meshes fall back gracefully.
	m2 := topology.NewMesh(3, 5)
	for src := 0; src < m2.Nodes(); src++ {
		if d := (BitReverse{}).Dest(m2, src, g); d == src || d >= m2.Nodes() {
			t.Fatalf("reverse fallback broken at %d -> %d", src, d)
		}
	}
}

func TestShuffleMapping(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(2, 0)
	if d := (Shuffle{}).Dest(m, 5, g); d != 10 {
		t.Fatalf("shuffle(0101) = %d, want 10", d)
	}
}

func TestNeighborMapping(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(2, 0)
	if d := (Neighbor{}).Dest(m, m.NodeAt(1, 2), g); d != m.NodeAt(2, 2) {
		t.Fatalf("neighbor = %d", d)
	}
	if d := (Neighbor{}).Dest(m, m.NodeAt(3, 2), g); d != m.NodeAt(0, 2) {
		t.Fatalf("neighbor wrap = %d", d)
	}
}

func TestHotspotBias(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(7, 0)
	spot := m.NodeAt(2, 2)
	h := NewHotspot([]int{spot}, 0.5)
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if h.Dest(m, 0, g) == spot {
			hits++
		}
	}
	rate := float64(hits) / draws
	// 50% direct plus uniform residue ~1/15th of the other half.
	if rate < 0.45 || rate > 0.62 {
		t.Fatalf("hotspot rate %.3f", rate)
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	m := topology.NewMesh(4, 4)
	g := rng.New(9, 0)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[(Uniform{}).Dest(m, 7, g)] = true
	}
	if len(seen) != m.Nodes()-1 {
		t.Fatalf("uniform reached %d destinations, want %d", len(seen), m.Nodes()-1)
	}
}
