// Package traffic provides the synthetic traffic patterns used to
// stress the network. The paper's evaluation uses uniform random
// traffic at several injection rates; the classic permutation patterns
// (transpose, bit-complement, bit-reverse, shuffle), a hotspot pattern
// and nearest-neighbor traffic are provided for the latency/throughput
// tooling and the traffic-sensitivity experiments.
package traffic

import (
	"fmt"
	"math/bits"

	"nocalert/internal/rng"
	"nocalert/internal/topology"
)

// Pattern maps a source node to a destination node for each generated
// packet. Implementations must be deterministic given the generator
// state so that campaign runs replay exactly.
type Pattern interface {
	// Name identifies the pattern in configs and reports.
	Name() string
	// Dest returns the destination for a packet injected at src. The
	// returned node may not equal src (self-traffic never enters the
	// network).
	Dest(m topology.Mesh, src int, g *rng.PCG) int
}

// New returns the pattern registered under name.
func New(name string) (Pattern, error) {
	switch name {
	case "uniform", "":
		return Uniform{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bitcomplement", "complement":
		return BitComplement{}, nil
	case "bitreverse", "reverse":
		return BitReverse{}, nil
	case "shuffle":
		return Shuffle{}, nil
	case "neighbor":
		return Neighbor{}, nil
	case "hotspot":
		return NewHotspot(nil, 0.3), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Uniform sends each packet to a destination chosen uniformly among all
// other nodes — the paper's stimulus.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	n := m.Nodes()
	if n < 2 {
		return src
	}
	d := g.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (x, y) to (y, x); nodes on the diagonal fall back to
// uniform traffic.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	x, y := m.Coords(src)
	if x == y || y >= m.W || x >= m.H {
		return Uniform{}.Dest(m, src, g)
	}
	return m.NodeAt(y, x)
}

// BitComplement sends node i to node (n-1)-i.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomplement" }

// Dest implements Pattern.
func (BitComplement) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	d := m.Nodes() - 1 - src
	if d == src {
		return Uniform{}.Dest(m, src, g)
	}
	return d
}

// BitReverse reverses the bits of the node index (meaningful for
// power-of-two node counts; otherwise it falls back to uniform).
type BitReverse struct{}

// Name implements Pattern.
func (BitReverse) Name() string { return "bitreverse" }

// Dest implements Pattern.
func (BitReverse) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	n := m.Nodes()
	if n&(n-1) != 0 {
		return Uniform{}.Dest(m, src, g)
	}
	w := bits.Len(uint(n)) - 1
	d := int(bits.Reverse32(uint32(src)) >> (32 - w))
	if d == src || d >= n {
		return Uniform{}.Dest(m, src, g)
	}
	return d
}

// Shuffle rotates the node index left by one bit (perfect shuffle).
type Shuffle struct{}

// Name implements Pattern.
func (Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (Shuffle) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	n := m.Nodes()
	if n&(n-1) != 0 {
		return Uniform{}.Dest(m, src, g)
	}
	w := bits.Len(uint(n)) - 1
	d := (src<<1 | src>>(w-1)) & (n - 1)
	if d == src {
		return Uniform{}.Dest(m, src, g)
	}
	return d
}

// Neighbor sends each packet one hop east (wrapping at the edge to the
// row's west end), a minimal-distance stress pattern.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	x, y := m.Coords(src)
	x++
	if x >= m.W {
		x = 0
	}
	d := m.NodeAt(x, y)
	if d == src {
		return Uniform{}.Dest(m, src, g)
	}
	return d
}

// Hotspot directs a fraction of traffic to designated hotspot nodes and
// the rest uniformly.
type Hotspot struct {
	// Nodes are the hotspot destinations; when empty, the mesh center
	// is used.
	Nodes []int
	// Frac is the probability a packet targets a hotspot.
	Frac float64
}

// NewHotspot returns a hotspot pattern over the given nodes.
func NewHotspot(nodes []int, frac float64) Hotspot {
	return Hotspot{Nodes: nodes, Frac: frac}
}

// Name implements Pattern.
func (Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(m topology.Mesh, src int, g *rng.PCG) int {
	spots := h.Nodes
	if len(spots) == 0 {
		spots = []int{m.NodeAt(m.W/2, m.H/2)}
	}
	if g.Bernoulli(h.Frac) {
		d := spots[g.Intn(len(spots))]
		if d != src {
			return d
		}
	}
	return Uniform{}.Dest(m, src, g)
}
