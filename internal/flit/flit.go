// Package flit defines the units of on-chip transfer: packets and the
// flits they are segmented into. The paper assumes the datapath (flit
// contents) is protected by an error-detecting code, so this package
// also carries a parity EDC over the synthetic payload; NoCAlert itself
// protects only the control fields, which are modelled as explicit
// struct members so the fault plane can corrupt them bit by bit.
package flit

import (
	"fmt"

	"nocalert/internal/statehash"
)

// Kind classifies a flit's position within its packet.
type Kind uint8

const (
	// Head is the first flit of a multi-flit packet. It carries the
	// routing information (destination) and triggers RC and VA.
	Head Kind = iota
	// Body is an interior flit of a multi-flit packet.
	Body
	// Tail is the last flit of a multi-flit packet; it tears down the
	// wormhole as it drains.
	Tail
	// HeadTail is the only flit of a single-flit packet.
	HeadTail
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Head:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "HT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsHead reports whether the flit opens a packet (Head or HeadTail).
func (k Kind) IsHead() bool { return k == Head || k == HeadTail }

// IsTail reports whether the flit closes a packet (Tail or HeadTail).
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Flit is the unit of flow control. Control fields (Kind, VC, the
// destination coordinates) steer the NoC and are the surface NoCAlert
// guards; Payload/EDC stand in for the EDC-protected datapath.
type Flit struct {
	// PacketID identifies the packet this flit belongs to. IDs are
	// unique per simulation run.
	PacketID uint64
	// Seq is the flit's index within its packet, starting at 0.
	Seq int
	// Kind is the flit's position within the packet.
	Kind Kind
	// VC is the virtual channel the flit occupies on the link it most
	// recently traversed (and hence the input VC it is written into).
	VC int
	// Src and Dest are source and destination node ids.
	Src, Dest int
	// DestX and DestY are the destination coordinates carried in the
	// header; the RC unit consumes these (and the fault plane may
	// corrupt them independently of Dest, modelling a fault on the RC
	// input wires).
	DestX, DestY int
	// Class is the protocol-level message class (e.g. request vs
	// response), which selects the VC partition and the fixed packet
	// length (invariance 28).
	Class int
	// Length is the total number of flits in the packet.
	Length int
	// Payload is synthetic datapath content.
	Payload uint64
	// EDC is the error-detecting code sealed over the payload and the
	// in-flight-immutable control fields (see SealEDC).
	EDC uint32
	// InjectedAt is the cycle the packet entered the source NI queue.
	InjectedAt int64
}

// Parity64 returns the even parity bit of v.
func Parity64(v uint64) bool {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 1
}

// edcCover is the word the error-detecting code protects. Following
// the paper's assumption that the EDC "provides coverage for both the
// payload and the network overhead bits", it spans the payload and the
// control fields that must not change in flight (kind, sequence,
// destination, class) — but not the VC field, which is legitimately
// rewritten at every hop.
func (f *Flit) edcCover() uint64 {
	const mix = 0x9e3779b97f4a7c15 // golden-ratio mixing constant
	w := f.Payload
	w ^= uint64(f.Kind) * mix
	w ^= uint64(f.Seq+1) * (mix >> 8)
	w ^= uint64(f.Dest+1) * (mix >> 16)
	w ^= uint64(f.Class+1) * (mix >> 24)
	return w
}

// edcFold finalizes the cover word into the stored code (a splitmix64
// finalizer folded to 32 bits), so that any change to the covered
// fields flips the code with near-certainty — modelling the "more
// elaborate coding" the paper permits in place of a single parity bit.
func edcFold(w uint64) uint32 {
	w ^= w >> 30
	w *= 0xbf58476d1ce4e5b9
	w ^= w >> 27
	w *= 0x94d049bb133111eb
	w ^= w >> 31
	return uint32(w ^ w>>32)
}

// SealEDC computes and stores the flit's error-detecting code over its
// current contents.
func (f *Flit) SealEDC() { f.EDC = edcFold(f.edcCover()) }

// EDCOK reports whether the flit's error-detecting code checks out; a
// false result models the per-flit EDC firing on corrupted payload or
// overhead bits.
func (f *Flit) EDCOK() bool { return f.EDC == edcFold(f.edcCover()) }

// String renders the flit compactly for traces and test failures.
func (f *Flit) String() string {
	return fmt.Sprintf("p%d.%d%s %d->%d vc%d c%d", f.PacketID, f.Seq, f.Kind, f.Src, f.Dest, f.VC, f.Class)
}

// Packet describes a packet prior to segmentation into flits.
type Packet struct {
	ID         uint64
	Src, Dest  int
	Class      int
	Length     int
	Payload    uint64
	InjectedAt int64
}

// FoldState folds the packet's contents into a state-fingerprint
// accumulator (queued packets awaiting segmentation are architectural
// state just like in-flight flits).
func (p *Packet) FoldState(h uint64) uint64 {
	h = statehash.Fold(h, p.ID)
	h = statehash.FoldInt(h, p.Src)
	h = statehash.FoldInt(h, p.Dest)
	h = statehash.FoldInt(h, p.Class)
	h = statehash.FoldInt(h, p.Length)
	h = statehash.Fold(h, p.Payload)
	h = statehash.Fold(h, uint64(p.InjectedAt))
	return h
}

// Flits segments the packet into its flits. destX, destY are the mesh
// coordinates of the destination, which the header carries for the RC
// units along the path. Single-flit packets yield one HeadTail flit.
func (p *Packet) Flits(destX, destY int) []*Flit {
	if p.Length < 1 {
		panic(fmt.Sprintf("flit: packet %d has invalid length %d", p.ID, p.Length))
	}
	out := make([]*Flit, p.Length)
	for i := 0; i < p.Length; i++ {
		kind := Body
		switch {
		case p.Length == 1:
			kind = HeadTail
		case i == 0:
			kind = Head
		case i == p.Length-1:
			kind = Tail
		}
		payload := p.Payload + uint64(i)
		out[i] = &Flit{
			PacketID:   p.ID,
			Seq:        i,
			Kind:       kind,
			Src:        p.Src,
			Dest:       p.Dest,
			DestX:      destX,
			DestY:      destY,
			Class:      p.Class,
			Length:     p.Length,
			Payload:    payload,
			InjectedAt: p.InjectedAt,
		}
		out[i].SealEDC()
	}
	return out
}

// Clone returns a deep copy of the flit.
func (f *Flit) Clone() *Flit {
	c := *f
	return &c
}

// FoldState folds the flit's full contents into a state-fingerprint
// accumulator. Flits travel by pointer and mutate in flight (VC rewrite
// per hop, fault-plane corruption), so their contents — not their
// identity — are architectural state. A nil flit folds a distinct
// sentinel so "no flit" and "zero flit" cannot collide.
func (f *Flit) FoldState(h uint64) uint64 {
	if f == nil {
		return statehash.Fold(h, 0x6e696c666c6974) // "nilflit"
	}
	h = statehash.Fold(h, f.PacketID)
	h = statehash.FoldInt(h, f.Seq)
	h = statehash.Fold(h, uint64(f.Kind))
	h = statehash.FoldInt(h, f.VC)
	h = statehash.FoldInt(h, f.Src)
	h = statehash.FoldInt(h, f.Dest)
	h = statehash.FoldInt(h, f.DestX)
	h = statehash.FoldInt(h, f.DestY)
	h = statehash.FoldInt(h, f.Class)
	h = statehash.FoldInt(h, f.Length)
	h = statehash.Fold(h, f.Payload)
	h = statehash.Fold(h, uint64(f.EDC))
	h = statehash.Fold(h, uint64(f.InjectedAt))
	return h
}

// arenaSlabSize is the number of flits per arena slab. A fork of a
// loaded 8×8 mesh clones a few hundred buffered flits, so one or two
// slabs cover a whole campaign run.
const arenaSlabSize = 256

// Arena is a slab-based bump allocator for flits. Fault campaigns fork
// a warmed network once per fault, and each fork deep-copies every
// buffered flit of every router; an Arena lets a worker pay those
// allocations once and recycle them for every subsequent fork. Get and
// CloneOf hand out slots in order; Reset recycles every slot at once.
// All flits obtained from an arena are invalidated by Reset — callers
// must not retain them across it. An Arena is not safe for concurrent
// use; campaigns keep one per worker.
type Arena struct {
	slabs [][]Flit
	slab  int // index of the slab currently being filled
	used  int // slots handed out from the current slab
}

// Get returns a zeroed flit slot from the arena.
func (a *Arena) Get() *Flit {
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Flit, arenaSlabSize))
	}
	s := a.slabs[a.slab]
	f := &s[a.used]
	a.used++
	if a.used == len(s) {
		a.slab++
		a.used = 0
	}
	*f = Flit{}
	return f
}

// CloneOf returns a copy of f backed by the arena. A nil arena falls
// back to a heap clone, so callers can thread an optional arena without
// branching.
func (a *Arena) CloneOf(f *Flit) *Flit {
	if a == nil {
		return f.Clone()
	}
	c := a.Get()
	*c = *f
	return c
}

// Reset recycles every slot handed out since the last Reset, keeping
// the slabs for reuse. Flits previously returned by Get or CloneOf
// become invalid.
func (a *Arena) Reset() { a.slab, a.used = 0, 0 }
