package flit

import (
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k              Kind
		s              string
		isHead, isTail bool
	}{
		{Head, "H", true, false},
		{Body, "B", false, false},
		{Tail, "T", false, true},
		{HeadTail, "HT", true, true},
	}
	for _, c := range cases {
		if c.k.String() != c.s {
			t.Errorf("%v.String() = %q", c.k, c.k.String())
		}
		if c.k.IsHead() != c.isHead || c.k.IsTail() != c.isTail {
			t.Errorf("%v predicates wrong", c.k)
		}
	}
}

func TestPacketSegmentation(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dest: 14, Class: 0, Length: 5, Payload: 0xdead, InjectedAt: 99}
	fl := p.Flits(2, 3)
	if len(fl) != 5 {
		t.Fatalf("got %d flits", len(fl))
	}
	wantKinds := []Kind{Head, Body, Body, Body, Tail}
	for i, f := range fl {
		if f.Kind != wantKinds[i] {
			t.Errorf("flit %d kind %v, want %v", i, f.Kind, wantKinds[i])
		}
		if f.Seq != i || f.PacketID != 7 || f.Dest != 14 || f.DestX != 2 || f.DestY != 3 {
			t.Errorf("flit %d fields wrong: %v", i, f)
		}
		if !f.EDCOK() {
			t.Errorf("flit %d EDC invalid at creation", i)
		}
		if f.InjectedAt != 99 {
			t.Errorf("flit %d InjectedAt %d", i, f.InjectedAt)
		}
	}
}

func TestSingleFlitPacket(t *testing.T) {
	p := &Packet{ID: 1, Length: 1}
	fl := p.Flits(0, 0)
	if len(fl) != 1 || fl[0].Kind != HeadTail {
		t.Fatalf("single-flit packet: %v", fl)
	}
}

func TestTwoFlitPacket(t *testing.T) {
	p := &Packet{ID: 1, Length: 2}
	fl := p.Flits(0, 0)
	if fl[0].Kind != Head || fl[1].Kind != Tail {
		t.Fatalf("two-flit packet kinds: %v %v", fl[0].Kind, fl[1].Kind)
	}
}

func TestInvalidLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Packet{ID: 1, Length: 0}).Flits(0, 0)
}

// TestEDCDetectsFieldCorruption: any change to an EDC-covered field
// must invalidate the code.
func TestEDCDetectsFieldCorruption(t *testing.T) {
	mk := func() *Flit {
		f := &Flit{PacketID: 3, Seq: 1, Kind: Body, Dest: 9, Class: 0, Payload: 0x1234}
		f.SealEDC()
		return f
	}
	mutations := map[string]func(*Flit){
		"kind":    func(f *Flit) { f.Kind = Head },
		"seq":     func(f *Flit) { f.Seq = 2 },
		"dest":    func(f *Flit) { f.Dest = 10 },
		"class":   func(f *Flit) { f.Class = 1 },
		"payload": func(f *Flit) { f.Payload ^= 1 << 17 },
	}
	for name, mut := range mutations {
		f := mk()
		mut(f)
		if f.EDCOK() {
			t.Errorf("EDC missed %s corruption", name)
		}
	}
	// The VC field is rewritten per hop and must NOT be covered.
	f := mk()
	f.VC = 3
	if !f.EDCOK() {
		t.Error("EDC must not cover the per-hop VC field")
	}
}

// Property: sealing always yields a valid code, and single payload bit
// flips are always detected.
func TestEDCPayloadBitFlips(t *testing.T) {
	f := func(payload uint64, bit uint8) bool {
		fl := &Flit{Kind: Body, Seq: 1, Dest: 5, Payload: payload}
		fl.SealEDC()
		if !fl.EDCOK() {
			return false
		}
		fl.Payload ^= 1 << (bit % 64)
		return !fl.EDCOK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParity64(t *testing.T) {
	cases := map[uint64]bool{
		0:       false,
		1:       true,
		3:       false,
		0xFF:    false,
		0x8001:  false,
		1 << 63: true,
	}
	for v, want := range cases {
		if Parity64(v) != want {
			t.Errorf("Parity64(%#x) = %v", v, !want)
		}
	}
}

func TestClone(t *testing.T) {
	p := &Packet{ID: 5, Length: 3, Payload: 42}
	f := p.Flits(1, 1)[0]
	c := f.Clone()
	if *c != *f {
		t.Fatal("clone differs")
	}
	c.Payload++
	if f.Payload == c.Payload {
		t.Fatal("clone shares storage")
	}
}

func TestStringRendering(t *testing.T) {
	p := &Packet{ID: 5, Src: 1, Dest: 2, Length: 1}
	f := p.Flits(0, 0)[0]
	if got := f.String(); got == "" {
		t.Fatal("empty String()")
	}
}
