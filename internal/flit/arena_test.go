package flit

import "testing"

func TestArenaCloneOfCopiesValue(t *testing.T) {
	var a Arena
	f := &Flit{PacketID: 7, Seq: 2, Kind: Tail, VC: 3, Payload: 0xbeef}
	f.SealEDC()
	c := a.CloneOf(f)
	if c == f {
		t.Fatal("arena clone must be a distinct object")
	}
	if *c != *f {
		t.Fatalf("arena clone differs: %+v vs %+v", c, f)
	}
	c.VC = 1
	if f.VC != 3 {
		t.Fatal("mutating the clone leaked into the original")
	}
}

func TestArenaNilFallsBackToHeap(t *testing.T) {
	var a *Arena
	f := &Flit{PacketID: 1}
	c := a.CloneOf(f)
	if c == f || *c != *f {
		t.Fatal("nil-arena CloneOf must heap-clone")
	}
}

func TestArenaGetZeroesSlot(t *testing.T) {
	var a Arena
	f := a.Get()
	f.PacketID = 99
	a.Reset()
	g := a.Get()
	if g != f {
		t.Fatal("after Reset the arena must hand back the same slot")
	}
	if g.PacketID != 0 {
		t.Fatal("Get must zero recycled slots")
	}
}

func TestArenaGrowsAcrossSlabs(t *testing.T) {
	var a Arena
	seen := map[*Flit]bool{}
	for i := 0; i < 3*arenaSlabSize+5; i++ {
		f := a.Get()
		if seen[f] {
			t.Fatalf("slot %d handed out twice before Reset", i)
		}
		seen[f] = true
	}
	a.Reset()
	if f := a.Get(); !seen[f] {
		t.Fatal("Reset must recycle existing slabs, not allocate new ones")
	}
}
