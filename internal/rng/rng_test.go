package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(1, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 equal draws", same)
	}
}

func TestCloneContinuesIdentically(t *testing.T) {
	g := New(9, 3)
	for i := 0; i < 37; i++ {
		g.Uint32()
	}
	c := g.Clone()
	for i := 0; i < 500; i++ {
		if g.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
}

// TestIntnBounds is a property test: Intn(n) always lands in [0, n).
func TestIntnBounds(t *testing.T) {
	g := New(11, 0)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := g.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 0).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	g := New(123, 5)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[g.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(77, 0)
	var sum float64
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := New(5, 5)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if g.Bernoulli(0.25) {
			hits++
		}
	}
	if rate := float64(hits) / draws; math.Abs(rate-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate %.4f", rate)
	}
}

// TestPermIsPermutation is a property test: Perm(n) is always a
// permutation of [0, n).
func TestPermIsPermutation(t *testing.T) {
	g := New(31, 2)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := g.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveIsPositional is the property sharded campaigns rely on:
// the stream derived for a coordinate depends only on the coordinate,
// never on derivation order or on sibling derivations.
func TestDeriveIsPositional(t *testing.T) {
	// Same (seed, path) → same value, computed in any interleaving.
	for _, path := range [][]uint64{{0}, {1}, {7, 3}, {3, 7}, {0, 0, 0}} {
		a := Derive(99, path...)
		for i := uint64(0); i < 50; i++ {
			Derive(99, i) // unrelated derivations in between
		}
		if b := Derive(99, path...); a != b {
			t.Fatalf("Derive(99, %v) unstable: %x vs %x", path, a, b)
		}
	}
	if Derive(99, 7, 3) == Derive(99, 3, 7) {
		t.Fatal("Derive ignores path order")
	}
	if Derive(99, 1) == Derive(99, 1, 0) {
		t.Fatal("Derive ignores path length")
	}
	if Derive(1, 5) == Derive(2, 5) {
		t.Fatal("Derive ignores seed")
	}
}

func TestNewDerivedStreamsIndependent(t *testing.T) {
	a := NewDerived(4, 10)
	b := NewDerived(4, 11)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived sibling streams produced %d/100 equal draws", same)
	}
	// Re-deriving the same coordinate replays the identical stream.
	x, y := NewDerived(4, 10), NewDerived(4, 10)
	for i := 0; i < 200; i++ {
		if x.Uint32() != y.Uint32() {
			t.Fatalf("re-derived stream diverged at draw %d", i)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g PCG
	// The zero value must not panic and must produce a stream.
	a, b := g.Uint32(), g.Uint32()
	_ = a
	_ = b
}
