// Package rng provides a small, deterministic, cloneable pseudo-random
// number generator.
//
// The fault-injection campaigns in this repository warm a network to a
// given cycle, deep-copy it, and replay thousands of faulty continuations
// from the copy. That only works if every source of randomness can be
// cloned bit-for-bit, which the standard library generators do not expose.
// PCG32 (O'Neill, 2014) has a two-word state, excellent statistical
// quality for simulation workloads, and trivially supports cloning.
package rng

import "nocalert/internal/statehash"

// PCG is a PCG32 (XSH-RR variant) pseudo-random number generator.
// The zero value is a valid generator but every zero-value instance
// produces the same stream; use New to obtain distinct streams.
type PCG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// New returns a generator seeded with seed and stream-selected by seq.
// Generators created with different seq values produce independent
// streams even when given the same seed.
func New(seed, seq uint64) *PCG {
	p := &PCG{inc: seq<<1 | 1}
	p.state = p.inc + seed
	p.Uint32()
	return p
}

// Clone returns an independent copy of the generator. The copy produces
// exactly the same future stream as the original.
func (p *PCG) Clone() *PCG {
	c := *p
	return &c
}

// FoldState folds the generator's full state into a state-fingerprint
// accumulator (see internal/statehash). Two generators whose folds
// agree produce identical future streams.
func (p *PCG) FoldState(h uint64) uint64 {
	return statehash.Fold(statehash.Fold(h, p.state), p.inc)
}

// Uint32 returns the next 32 bits of the stream.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMultiplier + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 bits of the stream.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniformly distributed integer in [0, n).
// It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := p.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Float64 returns a uniformly distributed float in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability prob (clamped to [0, 1]).
func (p *PCG) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// splitmix64 is the SplitMix64 output function (Steele, Lea & Flood,
// 2014): a bijective avalanche mix used here to fold identifiers into
// seed material. Unlike the PCG stream itself it has no state to
// advance, which makes it the right tool for *deriving* independent
// seeds from structured coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive folds a root seed and a coordinate path into a derived seed.
// The derivation is purely positional: Derive(s, a, b) depends only on
// (s, a, b), never on how many other streams were derived before it, so
// a sharded computation that derives one stream per work item draws
// exactly the same stream for item k no matter which shard runs it or
// in what order — the property that keeps sharded fault campaigns
// bit-identical to unsharded ones.
func Derive(seed uint64, path ...uint64) uint64 {
	h := splitmix64(seed)
	for _, p := range path {
		h = splitmix64(h ^ splitmix64(p))
	}
	return h
}

// NewDerived returns a generator seeded from Derive(seed, path...).
// Distinct paths yield independent streams; equal (seed, path) pairs
// yield identical streams regardless of derivation order.
func NewDerived(seed uint64, path ...uint64) *PCG {
	d := Derive(seed, path...)
	return New(d, splitmix64(d))
}

// Perm returns a pseudo-random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
