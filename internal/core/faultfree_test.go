package core_test

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/router"
	"nocalert/internal/routing"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
	"nocalert/internal/traffic"
)

// TestFaultFreeSilence is the linchpin property of the reproduction:
// in a fault-free network no checker may ever fire, at any load, under
// any pattern or configuration variation. A violation here would be a
// false alarm the hardware checkers, by construction, cannot raise.
func TestFaultFreeSilence(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*router.Config)
		rate  float64
		pat   traffic.Pattern
		cycle int64
	}{
		{name: "default-low", rate: 0.05, cycle: 3000},
		{name: "default-high", rate: 0.35, cycle: 3000},
		{name: "saturated", rate: 0.8, cycle: 1500},
		{name: "transpose", rate: 0.2, pat: traffic.Transpose{}, cycle: 2500},
		{name: "hotspot", rate: 0.15, pat: traffic.NewHotspot(nil, 0.4), cycle: 2500},
		{name: "1vc", mut: func(c *router.Config) { c.VCs = 1 }, rate: 0.1, cycle: 2500},
		{name: "2vc", mut: func(c *router.Config) { c.VCs = 2 }, rate: 0.15, cycle: 2500},
		{name: "8vc", mut: func(c *router.Config) { c.VCs = 8 }, rate: 0.25, cycle: 2000},
		{name: "deep-buffers", mut: func(c *router.Config) { c.BufDepth = 8 }, rate: 0.2, cycle: 2000},
		{name: "two-classes", mut: func(c *router.Config) {
			c.Classes = 2
			c.LenByClass = []int{1, 5}
		}, rate: 0.2, cycle: 2500},
		{name: "single-flit", mut: func(c *router.Config) { c.LenByClass = []int{1} }, rate: 0.2, cycle: 2500},
		{name: "westfirst", mut: func(c *router.Config) { c.Alg = routing.WestFirst{} }, rate: 0.15, cycle: 2500},
		{name: "adaptive", mut: func(c *router.Config) { c.Alg = routing.Adaptive{} }, rate: 0.15, cycle: 2500},
		{name: "nonatomic", mut: func(c *router.Config) { c.AtomicVC = false }, rate: 0.2, cycle: 2500},
		{name: "speculative", mut: func(c *router.Config) { c.Speculative = true }, rate: 0.2, cycle: 2500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := router.Default(topology.NewMesh(4, 4))
			if tc.mut != nil {
				tc.mut(&rc)
			}
			cfg := sim.Config{Router: rc, Pattern: tc.pat, InjectionRate: tc.rate, Seed: 99}
			n := sim.MustNew(cfg, nil)
			eng := core.NewEngine(n.RouterConfig(), core.Options{KeepViolations: true, MaxViolations: 5})
			n.AttachMonitor(eng)
			n.Run(tc.cycle)
			n.Drain(10000)
			if eng.Detected() {
				t.Fatalf("fault-free run raised assertions: %v", eng.Violations())
			}
			if n.FlitsEjected() == 0 {
				t.Fatal("no traffic delivered; test exercised nothing")
			}
		})
	}
}
