package core_test

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// TestFormerFalseNegativesNowCaught replays the two cycle-32K campaign
// faults that previously escaped detection (route-register SEUs that
// strand a wormhole against a missing or impossible output port) and
// checks the status-table consistency rules now catch them.
func TestFormerFalseNegativesNowCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("32K warmup in -short mode")
	}
	rc := router.Default(topology.NewMesh(8, 8))
	warm := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.05, Seed: 1}, nil)
	warm.Run(32000)
	for _, f := range []fault.Fault{
		{Site: fault.Site{Router: 56, Kind: fault.VCRouteReg, Port: 1, VC: 0, Width: 3}, Bit: 1, Cycle: 32000, Type: fault.Transient},
		{Site: fault.Site{Router: 41, Kind: fault.VCRouteReg, Port: 2, VC: 1, Width: 3}, Bit: 0, Cycle: 32000, Type: fault.Transient},
	} {
		n := warm.Clone(fault.NewPlane(f))
		eng := core.NewEngine(n.RouterConfig(), core.Options{KeepViolations: true, MaxViolations: 3})
		n.AttachMonitor(eng)
		n.Run(500)
		drained := n.Drain(10000)
		if !drained && !eng.Detected() {
			t.Errorf("%s: still a silent failure", f.String())
			continue
		}
		if !eng.Detected() {
			t.Logf("%s: benign this time (drained)", f.String())
			continue
		}
		t.Logf("%s: detected, latency %d, first violations %v",
			f.String(), eng.FirstDetection()-32000, eng.Violations())
	}
}
