package core

import (
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// maxLegalDir is the highest legal output-direction code (Local).
const maxLegalDir = int(topology.Local)

// checkRC implements invariances 1–3, 20, 21 and feeds 31's data: the
// routing-computation unit may only produce directions that exist, that
// honour the algorithm's turn rules, and (for minimal algorithms) that
// step toward the destination; and it may only complete on the header
// flit of a non-empty VC.
func (e *Engine) checkRC(s *router.Signals) {
	m := e.cfg.Mesh
	cx, cy := m.Coords(s.Router)
	for i := range s.RCExecs {
		x := &s.RCExecs[i]
		out := x.OutDir
		in := topology.Direction(x.Port)
		if out > maxLegalDir || !m.HasPort(s.Router, topology.Direction(out)) {
			// Invariance 2: impossible code, or a port this router does
			// not have.
			e.emit(InvalidRCOutput, s.Router, s.Cycle, x.Port, x.VC,
				"RC produced direction code %d", out)
		} else {
			dir := topology.Direction(out)
			if !e.cfg.Alg.LegalTurn(in, dir) {
				e.emit(IllegalTurn, s.Router, s.Cycle, x.Port, x.VC,
					"turn %s->%s forbidden by %s routing", in, dir, e.cfg.Alg.Name())
			}
			if e.enabled[NonMinimalRoute] && e.cfg.Alg.Minimal() && x.HasHead {
				// The checker taps the destination straight from the
				// buffered header (the VC status table), independent of
				// the RC unit's input wires — so a corrupted input wire
				// shows up as a non-minimal output.
				if !stepsToward(cx, cy, x.TrueDestX, x.TrueDestY, dir) {
					e.emit(NonMinimalRoute, s.Router, s.Cycle, x.Port, x.VC,
						"direction %s does not approach (%d,%d)", dir, x.TrueDestX, x.TrueDestY)
				}
			}
		}
		switch {
		case !x.HasHead:
			// Invariance 21: an RC→VA transition on an empty buffer.
			e.emit(RCOnEmptyVC, s.Router, s.Cycle, x.Port, x.VC, "RC completed on empty VC")
		case !x.HeadKind.IsHead():
			// Invariance 20: RC is performed only on header flits.
			e.emit(RCOnNonHeader, s.Router, s.Cycle, x.Port, x.VC,
				"RC completed on %s flit", x.HeadKind)
		}
	}
}

// stepsToward reports whether one hop in dir from (cx, cy) strictly
// decreases the Manhattan distance to (dx, dy); dir == Local is minimal
// exactly when the packet is already home.
func stepsToward(cx, cy, dx, dy int, dir topology.Direction) bool {
	switch dir {
	case topology.Local:
		return cx == dx && cy == dy
	case topology.North:
		return dy > cy
	case topology.South:
		return dy < cy
	case topology.East:
		return dx > cx
	case topology.West:
		return dx < cx
	}
	return false
}

// checkArbiters implements invariances 4–6 for all four arbiter banks:
// a grant without a request, no grant despite requests, and multi-hot
// grant vectors are impossible outputs of a healthy arbiter (the
// paper's Figure 4 circuit checks exactly the first of these).
func (e *Engine) checkArbiters(s *router.Signals) {
	banks := [...]struct {
		name string
		rg   *[router.P]router.ReqGnt
	}{
		{"VA1", &s.VA1}, {"SA1", &s.SA1}, {"VA2", &s.VA2}, {"SA2", &s.SA2},
	}
	for _, b := range banks {
		for p := 0; p < router.P; p++ {
			rg := b.rg[p]
			if rg.Req.IsZero() && rg.Gnt.IsZero() {
				continue
			}
			if !(rg.Gnt &^ rg.Req).IsZero() {
				e.emit(GrantWithoutRequest, s.Router, s.Cycle, p, -1,
					"%s grant %s without request %s", b.name, rg.Gnt, rg.Req)
			}
			if !rg.Req.IsZero() && rg.Gnt.IsZero() {
				e.emit(GrantToNobody, s.Router, s.Cycle, p, -1,
					"%s requests %s but no grant", b.name, rg.Req)
			}
			if !rg.Gnt.AtMostOneHot() {
				e.emit(GrantNotOneHot, s.Router, s.Cycle, p, -1,
					"%s grant vector %s is multi-hot", b.name, rg.Gnt)
			}
		}
	}
}

// checkAllocation implements invariances 7–13, 19, 22 and 23: the
// cross-module agreement rules between RC, VA and SA, plus the
// legality of allocation targets.
func (e *Engine) checkAllocation(s *router.Signals) {
	e.checkStageWires(s)
	// --- VA side ---
	var inVCAssigns, outVCAssigns map[[2]int]int
	if len(s.VAAssigns) > 1 {
		inVCAssigns = make(map[[2]int]int, len(s.VAAssigns))
		outVCAssigns = make(map[[2]int]int, len(s.VAAssigns))
	}
	for i := range s.VAAssigns {
		a := &s.VAAssigns[i]
		pre := preVC(s, a.InPort, a.InVC)

		if a.OutVC >= e.cfg.VCs {
			// Invariance 19: the stored output VC value is out of range.
			e.emit(InvalidOutputVC, s.Router, s.Cycle, a.InPort, a.InVC,
				"VA assigned out-of-range output VC %d", a.OutVC)
		} else if !a.TargetFree || a.TargetCredits < e.cfg.BufDepth {
			// Invariance 7: allocation must target a free VC with a full
			// complement of credits.
			e.emit(GrantToOccupiedOrFull, s.Router, s.Cycle, a.OutPort, a.OutVC,
				"VA granted VC %d of port %d (free=%v credits=%d)",
				a.OutVC, a.OutPort, a.TargetFree, a.TargetCredits)
		}
		// Invariance 12: a VA2 winner must hold a VA1 win this cycle.
		if s.VA1[a.InPort].Gnt.IsZero() {
			e.emit(IntraVAStageOrder, s.Router, s.Cycle, a.InPort, a.InVC,
				"VA2 granted port %d without a VA1 winner", a.InPort)
		}
		// Invariance 10: the allocated output port must be the one RC
		// computed for this VC.
		if pre != nil && pre.Route != a.OutPort {
			e.emit(VAAgreesWithRC, s.Router, s.Cycle, a.InPort, a.InVC,
				"VA allocated port %d but RC computed %d", a.OutPort, pre.Route)
		}
		// Invariance 17 (pipeline order): VA completes only on a VC that
		// was waiting for VA.
		if pre != nil && pre.State != router.VCWaitingVA {
			e.emit(ConsistentVCState, s.Router, s.Cycle, a.InPort, a.InVC,
				"VA completed on VC in state %s", pre.State)
		}
		// Invariances 22/23: VA completes only with a header flit at the
		// head of a non-empty buffer.
		if pre != nil {
			switch {
			case pre.BufLen == 0:
				e.emit(VAOnEmptyVC, s.Router, s.Cycle, a.InPort, a.InVC, "VA completed on empty VC")
			case !pre.HeadKind.IsHead():
				e.emit(VAOnNonHeader, s.Router, s.Cycle, a.InPort, a.InVC,
					"VA completed on %s flit", pre.HeadKind)
			}
		}
		if inVCAssigns != nil {
			inVCAssigns[[2]int{a.InPort, a.InVC}]++
			if a.OutVC < e.cfg.VCs {
				outVCAssigns[[2]int{a.OutPort, a.OutVC}]++
			}
		}
	}
	// Invariance 8: one-to-one VC assignment, both directions.
	for key, n := range inVCAssigns {
		if n > 1 {
			e.emit(OneToOneVCAssignment, s.Router, s.Cycle, key[0], key[1],
				"input VC assigned %d output VCs in one cycle", n)
		}
	}
	for key, n := range outVCAssigns {
		if n > 1 {
			e.emit(OneToOneVCAssignment, s.Router, s.Cycle, key[0], key[1],
				"output VC granted to %d input VCs in one cycle", n)
		}
	}

	// --- SA side ---
	var perInPort [router.P]int
	for i := range s.SALatches {
		l := &s.SALatches[i]
		pre := preVC(s, l.InPort, l.InVC)
		perInPort[l.InPort]++

		// Invariance 13: an SA2 winner must hold an SA1 win this cycle.
		if s.SA1[l.InPort].Gnt.IsZero() {
			e.emit(IntraSAStageOrder, s.Router, s.Cycle, l.InPort, l.InVC,
				"SA2 granted port %d without an SA1 winner", l.InPort)
		}
		// Invariance 11: the switch connects the VC toward the port RC
		// computed.
		if pre != nil && pre.Route != l.OutPort {
			e.emit(SAAgreesWithRC, s.Router, s.Cycle, l.InPort, l.InVC,
				"SA connected port %d but RC computed %d", l.OutPort, pre.Route)
		}
		// Invariance 7 (credit clause): the switch may not forward into
		// a VC with no credits (checked in SA1, so a granted VC always
		// has one — unless the grant is speculative, which commits or
		// nullifies at traversal).
		if !l.Speculative && l.OutVC < e.cfg.VCs && l.CreditsBefore <= 0 {
			e.emit(GrantToOccupiedOrFull, s.Router, s.Cycle, l.OutPort, l.OutVC,
				"SA granted toward VC %d of port %d with no credits", l.OutVC, l.OutPort)
		}
		// Invariance 19 (ST clause): the output VC register driving the
		// link is out of range.
		if l.OutVC >= e.cfg.VCs {
			e.emit(InvalidOutputVC, s.Router, s.Cycle, l.InPort, l.InVC,
				"SA forwarding with out-of-range output VC %d", l.OutVC)
		}
		// Invariance 17 (pipeline order): SA success requires VA done
		// (state Active) — except for speculative grants.
		if pre != nil && pre.State != router.VCActive && !l.Speculative {
			e.emit(ConsistentVCState, s.Router, s.Cycle, l.InPort, l.InVC,
				"SA granted VC in state %s", pre.State)
		}
	}
	// Invariance 9: an input port must not reach multiple output ports
	// in one cycle.
	for p, n := range perInPort {
		if n > 1 {
			e.emit(OneToOnePortAssignment, s.Router, s.Cycle, p, -1,
				"input port connected to %d output ports", n)
		}
	}
}

// checkStageWires applies the pipeline-order and agreement rules at the
// allocator request/grant wires themselves (invariances 17, 10–13):
// a VA request or local grant may only exist for a VC waiting for VA;
// an SA request or local grant only for a VC whose VA is done (or
// speculatively, still waiting, in speculative mode); and a global
// request from a port must be backed by that port's local winner
// routing to exactly that output.
func (e *Engine) checkStageWires(s *router.Signals) {
	for p := 0; p < router.P; p++ {
		for w := s.VA1[p].Req | s.VA1[p].Gnt; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			pre := preVC(s, p, v)
			if pre != nil && pre.State != router.VCWaitingVA {
				e.emit(ConsistentVCState, s.Router, s.Cycle, p, v,
					"VA1 activity for VC in state %s", pre.State)
			}
		}
		for w := s.SA1[p].Req | s.SA1[p].Gnt; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			pre := preVC(s, p, v)
			if pre == nil {
				continue
			}
			okState := pre.State == router.VCActive ||
				e.cfg.Speculative && pre.State == router.VCWaitingVA
			if !okState {
				e.emit(ConsistentVCState, s.Router, s.Cycle, p, v,
					"SA1 activity for VC in state %s", pre.State)
			}
		}
	}
	for o := 0; o < router.P; o++ {
		for rw := s.VA2[o].Req; !rw.IsZero(); {
			var p int
			p, rw = rw.NextBit()
			w := s.VA1[p].Gnt.First()
			if w < 0 {
				e.emit(IntraVAStageOrder, s.Router, s.Cycle, p, -1,
					"VA2 request from port %d without a VA1 winner", p)
				continue
			}
			if pre := preVC(s, p, w); pre != nil && pre.Route != o {
				e.emit(VAAgreesWithRC, s.Router, s.Cycle, p, w,
					"VA2 request targets port %d but RC computed %d", o, pre.Route)
			}
		}
		for rw := s.SA2[o].Req; !rw.IsZero(); {
			var p int
			p, rw = rw.NextBit()
			w := s.SA1[p].Gnt.First()
			if w < 0 {
				e.emit(IntraSAStageOrder, s.Router, s.Cycle, p, -1,
					"SA2 request from port %d without an SA1 winner", p)
				continue
			}
			if pre := preVC(s, p, w); pre != nil && pre.Route != o {
				e.emit(SAAgreesWithRC, s.Router, s.Cycle, p, w,
					"SA2 request targets port %d but RC computed %d", o, pre.Route)
			}
		}
	}
}

// preVC returns the pre-cycle snapshot of (port, vc), or nil when the
// indices fall outside the configuration (stale latches can point
// anywhere).
func preVC(s *router.Signals, p, v int) *router.PreVC {
	if p < 0 || p >= router.P || v < 0 || v >= len(s.Pre.In[p]) {
		return nil
	}
	return &s.Pre.In[p][v]
}

// checkXbar implements invariances 14–16: each crossbar column and row
// carries at most one connection, and flits are conserved across the
// switch.
func (e *Engine) checkXbar(s *router.Signals) {
	var rowUse [router.P]int
	for o := 0; o < router.P; o++ {
		col := s.XbarCol[o]
		if col.IsZero() {
			continue
		}
		if !col.AtMostOneHot() {
			e.emit(XbarColumnOneHot, s.Router, s.Cycle, o, -1,
				"column %d control vector %s is multi-hot", o, col)
		}
		for w := col; !w.IsZero(); {
			var r int
			r, w = w.NextBit()
			rowUse[r]++
			if !s.XbarRows.Get(r) && !(e.cfg.Speculative && s.XbarSpecNull.Get(o)) {
				// A crossbar connection was set up but the selected row
				// presents no flit: the reserved traversal vanished. (A
				// nullified speculative grant is the legal exception.)
				e.emit(XbarFlitConservation, s.Router, s.Cycle, o, -1,
					"column %d connected to row %d which carries no flit", o, r)
			}
		}
	}
	for r, n := range rowUse {
		if n > 1 {
			e.emit(XbarRowOneHot, s.Router, s.Cycle, r, -1,
				"row %d connected to %d columns", r, n)
		}
	}
	if s.XbarIn != s.XbarOut {
		e.emit(XbarFlitConservation, s.Router, s.Cycle, -1, -1,
			"%d flits entered the crossbar, %d left", s.XbarIn, s.XbarOut)
	}
}

// checkBuffers implements invariances 17 (state validity), 18, 24–28:
// the buffer read/write legality rules and packet-shape rules.
func (e *Engine) checkBuffers(s *router.Signals) {
	// Invariances 17, 2 and 19 at the VC status table: the registers
	// must hold a mutually consistent configuration every cycle. These
	// are the checks that catch single-event upsets in the state
	// registers themselves — corruption that would otherwise strand a
	// packet without ever producing an illegal *operation*. The sweep
	// walks the snapshot's activity masks word-at-a-time instead of
	// every VC: a free, empty VC (the overwhelming majority each cycle)
	// satisfies all four checks vacuously, and the mask is computed from
	// the same post-fault snapshot values the checks consume, so the
	// sparse sweep flags exactly what the full sweep would.
	for p := 0; p < router.P; p++ {
		for w := s.Pre.Active[p]; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			pre := &s.Pre.In[p][v]
			st := pre.State
			if !st.Valid() {
				e.emit(ConsistentVCState, s.Router, s.Cycle, p, v,
					"state register holds invalid encoding %d", int(st))
				continue
			}
			// A free VC cannot hold buffered flits: every flit enters
			// through a header that claims the VC.
			if st == router.VCIdle && pre.BufLen > 0 {
				e.emit(ConsistentVCState, s.Router, s.Cycle, p, v,
					"VC is free but buffers %d flits", pre.BufLen)
			}
			// Past the RC stage, the latched route must name a real
			// output port (the register holds the RC output; an illegal
			// value there is invariance 2 in stored form).
			if st == router.VCWaitingVA || st == router.VCActive {
				if pre.Route > maxLegalDir || !e.cfg.Mesh.HasPort(s.Router, topology.Direction(pre.Route)) {
					e.emit(InvalidRCOutput, s.Router, s.Cycle, p, v,
						"route register holds invalid direction %d in state %s", pre.Route, st)
				}
			}
			// Past the VA stage, the latched output VC must be in range
			// (invariance 19 in stored form).
			if st == router.VCActive && pre.OutVC >= e.cfg.VCs {
				e.emit(InvalidOutputVC, s.Router, s.Cycle, p, v,
					"output VC register holds out-of-range value %d", pre.OutVC)
			}
		}
	}
	// Invariance 24: reads from empty buffers.
	for p := 0; p < router.P; p++ {
		if eb := s.Reads[p].EmptyBits; !eb.IsZero() {
			for _, v := range eb.Bits() {
				e.emit(ReadFromEmptyBuffer, s.Router, s.Cycle, p, v, "read strobe on empty buffer")
			}
		}
	}
	for i := range s.Arrivals {
		a := &s.Arrivals[i]
		for j := range a.Targets {
			t := &a.Targets[j]
			if t.FullBefore {
				// Invariance 25.
				e.emit(WriteToFullBuffer, s.Router, s.Cycle, a.Port, t.VC, "write strobe on full buffer")
				continue
			}
			head := a.Kind.IsHead()
			if t.StateBefore == router.VCIdle && !head {
				// Invariance 18: only a header may open a free VC.
				e.emit(HeaderOnlyInFreeVC, s.Router, s.Cycle, a.Port, t.VC,
					"%s flit entered a free VC", a.Kind)
			}
			if e.cfg.AtomicVC {
				if head && t.StateBefore != router.VCIdle {
					// Invariance 26: atomic buffers accept one packet.
					e.emit(BufferAtomicity, s.Router, s.Cycle, a.Port, t.VC,
						"header arrived at VC in state %s", t.StateBefore)
				}
			} else if t.HasPrev {
				// Invariance 27: in non-atomic buffers a tail may only
				// be followed by a header, and a header may only follow
				// a tail.
				switch {
				case t.PrevKind.IsTail() && !head:
					e.emit(NonAtomicPacketMixing, s.Router, s.Cycle, a.Port, t.VC,
						"%s flit follows a tail", a.Kind)
				case !t.PrevKind.IsTail() && head && t.StateBefore != router.VCIdle:
					e.emit(NonAtomicPacketMixing, s.Router, s.Cycle, a.Port, t.VC,
						"header follows a %s flit", t.PrevKind)
				}
			}
			// Invariance 28: packets of a class have a fixed length.
			want := e.cfg.PacketLen(classOfArrival(e.cfg, a.Flit.Class, t.VC))
			switch {
			case t.ArrivedAfter > want:
				e.emit(PacketFlitCount, s.Router, s.Cycle, a.Port, t.VC,
					"flit %d of a %d-flit class", t.ArrivedAfter, want)
			case a.Kind.IsTail() && t.ArrivedAfter != want:
				e.emit(PacketFlitCount, s.Router, s.Cycle, a.Port, t.VC,
					"tail after %d flits, class length %d", t.ArrivedAfter, want)
			}
		}
	}
}

func classOfArrival(cfg *router.Config, flitClass, vc int) int {
	if flitClass >= 0 && flitClass < cfg.Classes {
		return flitClass
	}
	return cfg.ClassOfVC(vc)
}

// checkPortLevel implements invariances 29–31: the single de-mux/mux
// per port admits one read, one write and one RC completion per cycle.
func (e *Engine) checkPortLevel(s *router.Signals) {
	for p := 0; p < router.P; p++ {
		if s.Reads[p].Strobe.Count() > 1 {
			e.emit(ConcurrentVCReads, s.Router, s.Cycle, p, -1,
				"read strobes %s active concurrently", s.Reads[p].Strobe)
		}
		if s.RCDone[p].Count() > 1 {
			e.emit(ConcurrentRCComplete, s.Router, s.Cycle, p, -1,
				"RC completed for VCs %s concurrently", s.RCDone[p])
		}
	}
	for i := range s.Arrivals {
		a := &s.Arrivals[i]
		// The port de-multiplexer must route each arriving flit into
		// exactly one VC buffer: several strobes duplicate the flit,
		// zero strobes silently drop it — both are illegal outputs of
		// the de-mux.
		switch n := a.Strobe.Count(); {
		case n > 1:
			e.emit(ConcurrentVCWrites, s.Router, s.Cycle, a.Port, -1,
				"write strobes %s active concurrently", a.Strobe)
		case n == 0 && a.Flit != nil:
			e.emit(ConcurrentVCWrites, s.Router, s.Cycle, a.Port, -1,
				"arriving flit produced no write strobe")
		}
	}
}

// checkEndToEnd implements invariance 32: a flit leaving through the
// local port must be destined to this node. (The flit's destination
// field travels under the error-detecting code the paper assumes for
// the datapath, so the checker may trust it.)
func (e *Engine) checkEndToEnd(s *router.Signals) {
	for i := range s.Departures {
		d := &s.Departures[i]
		if d.OutPort != int(topology.Local) {
			continue
		}
		if d.Flit != nil && d.Flit.Dest != s.Router {
			e.emit(EndToEndMisdelivery, s.Router, s.Cycle, d.OutPort, d.OutVC,
				"flit for node %d ejected at node %d", d.Flit.Dest, s.Router)
		}
	}
}
