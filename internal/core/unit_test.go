package core

import (
	"testing"

	"nocalert/internal/bitvec"
	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// sig builds a quiescent, well-formed signal record for router id of a
// 4×4 default-config network, ready to have one anomaly injected.
func sig(cfg *router.Config, id int, cycle int64) *router.Signals {
	s := &router.Signals{Router: id, Cycle: cycle}
	for p := 0; p < router.P; p++ {
		s.Pre.In[p] = make([]router.PreVC, cfg.VCs)
		s.Pre.Out[p] = make([]router.PreOutVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			s.Pre.In[p][v] = router.PreVC{State: router.VCIdle, Route: 7}
			s.Pre.Out[p][v] = router.PreOutVC{Free: true, Credits: cfg.BufDepth}
		}
	}
	return s
}

// run pushes one signal record through a fresh engine and returns the
// distinct checkers that fired.
func run(t *testing.T, cfg *router.Config, s *router.Signals) map[CheckerID]bool {
	t.Helper()
	// Hand-built records don't maintain the activity masks inline the way
	// BeginCycle does; rebuild them so the sparse buffer sweep sees the
	// injected anomaly.
	s.Pre.RecomputeActive()
	e := NewEngine(cfg, Options{KeepViolations: true})
	e.RouterCycle(nil, s)
	e.EndCycle(s.Cycle)
	out := map[CheckerID]bool{}
	for _, id := range e.FiredCheckers() {
		out[id] = true
	}
	return out
}

// expectOnly asserts exactly the given checkers fired.
func expectOnly(t *testing.T, got map[CheckerID]bool, want ...CheckerID) {
	t.Helper()
	wantSet := map[CheckerID]bool{}
	for _, id := range want {
		wantSet[id] = true
	}
	for id := range got {
		if !wantSet[id] {
			t.Errorf("unexpected checker fired: %v", id)
		}
	}
	for id := range wantSet {
		if !got[id] {
			t.Errorf("checker %v did not fire", id)
		}
	}
}

func unitCfg() *router.Config {
	c := router.Default(topology.NewMesh(4, 4))
	return &c
}

func TestQuiescentSignalsSilent(t *testing.T) {
	cfg := unitCfg()
	expectOnly(t, run(t, cfg, sig(cfg, 5, 100)))
}

func TestUnitChecker1IllegalTurn(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100) // router 5 = (1,1)
	// Packet entered from the North port (moving south) turning East:
	// the paper's Figure 2(a) violation. Destination is set so the hop
	// is minimal (east of the router), isolating the turn rule.
	s.Pre.In[int(topology.North)][0] = router.PreVC{State: router.VCRouting, HasHead: true, HeadKind: flit.Head}
	s.RCExecs = append(s.RCExecs, router.RCExec{
		Port: int(topology.North), VC: 0, HasHead: true, HeadKind: flit.Head,
		DestX: 3, DestY: 1, TrueDestX: 3, TrueDestY: 1, OutDir: int(topology.East),
	})
	s.RCDone[int(topology.North)] = bitvec.New(0)
	expectOnly(t, run(t, cfg, s), IllegalTurn)
}

func TestUnitChecker2InvalidDirection(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.RCExecs = append(s.RCExecs, router.RCExec{
		Port: int(topology.Local), VC: 0, HasHead: true, HeadKind: flit.Head,
		DestX: 3, DestY: 1, TrueDestX: 3, TrueDestY: 1, OutDir: 6, // code 6: impossible
	})
	s.RCDone[int(topology.Local)] = bitvec.New(0)
	expectOnly(t, run(t, cfg, s), InvalidRCOutput)
}

func TestUnitChecker2MissingPort(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 0, 100) // corner router: no South or West port
	s.RCExecs = append(s.RCExecs, router.RCExec{
		Port: int(topology.Local), VC: 0, HasHead: true, HeadKind: flit.Head,
		DestX: 0, DestY: 0, TrueDestX: 0, TrueDestY: 0, OutDir: int(topology.South),
	})
	s.RCDone[int(topology.Local)] = bitvec.New(0)
	// South is both an impossible port here and non-minimal/illegal by
	// coordinates; the range check must fire.
	got := run(t, cfg, s)
	if !got[InvalidRCOutput] {
		t.Error("checker 2 did not flag a direction to a missing port")
	}
}

func TestUnitChecker3NonMinimal(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	// Injected packet headed to (3,1) routed West: legal turn, wrong
	// way.
	s.RCExecs = append(s.RCExecs, router.RCExec{
		Port: int(topology.Local), VC: 0, HasHead: true, HeadKind: flit.Head,
		DestX: 3, DestY: 1, TrueDestX: 3, TrueDestY: 1, OutDir: int(topology.West),
	})
	s.RCDone[int(topology.Local)] = bitvec.New(0)
	expectOnly(t, run(t, cfg, s), NonMinimalRoute)
}

func TestUnitCheckers4to6Arbiter(t *testing.T) {
	cfg := unitCfg()

	s := sig(cfg, 5, 100)
	s.SA1[0] = router.ReqGnt{Req: 0, Gnt: bitvec.New(1)} // grant w/o request
	got := run(t, cfg, s)
	if !got[GrantWithoutRequest] {
		t.Error("checker 4 silent")
	}

	s = sig(cfg, 5, 100)
	s.VA2[2] = router.ReqGnt{Req: bitvec.New(0, 3), Gnt: 0} // grant to nobody
	got = run(t, cfg, s)
	if !got[GrantToNobody] {
		t.Error("checker 5 silent")
	}

	s = sig(cfg, 5, 100)
	s.SA2[1] = router.ReqGnt{Req: bitvec.New(0, 3), Gnt: bitvec.New(0, 3)} // multi-hot
	got = run(t, cfg, s)
	if !got[GrantNotOneHot] {
		t.Error("checker 6 silent")
	}
}

func TestUnitChecker7OccupiedVC(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.Pre.In[0][1] = router.PreVC{State: router.VCWaitingVA, HasHead: true, HeadKind: flit.Head, Route: 2, BufLen: 1}
	s.VA1[0] = router.ReqGnt{Req: bitvec.New(1), Gnt: bitvec.New(1)}
	s.VA2[2] = router.ReqGnt{Req: bitvec.New(0), Gnt: bitvec.New(0)}
	s.VAAssigns = append(s.VAAssigns, router.VAAssign{
		OutPort: 2, InPort: 0, InVC: 1, OutVC: 3,
		TargetFree: false, TargetCredits: cfg.BufDepth, // occupied!
	})
	got := run(t, cfg, s)
	if !got[GrantToOccupiedOrFull] {
		t.Error("checker 7 silent on occupied VC")
	}
}

func TestUnitChecker8DoubleAssignment(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.Pre.In[0][1] = router.PreVC{State: router.VCWaitingVA, HasHead: true, HeadKind: flit.Head, Route: 2, BufLen: 1}
	s.Pre.In[3][0] = router.PreVC{State: router.VCWaitingVA, HasHead: true, HeadKind: flit.Head, Route: 2, BufLen: 1}
	s.VA1[0] = router.ReqGnt{Req: bitvec.New(1), Gnt: bitvec.New(1)}
	s.VA1[3] = router.ReqGnt{Req: bitvec.New(0), Gnt: bitvec.New(0)}
	s.VA2[2] = router.ReqGnt{Req: bitvec.New(0, 3), Gnt: bitvec.New(0, 3)}
	// Two input VCs granted the same output VC in one cycle.
	s.VAAssigns = append(s.VAAssigns,
		router.VAAssign{OutPort: 2, InPort: 0, InVC: 1, OutVC: 0, TargetFree: true, TargetCredits: cfg.BufDepth},
		router.VAAssign{OutPort: 2, InPort: 3, InVC: 0, OutVC: 0, TargetFree: false, TargetCredits: cfg.BufDepth},
	)
	got := run(t, cfg, s)
	if !got[OneToOneVCAssignment] {
		t.Error("checker 8 silent on double assignment")
	}
}

func TestUnitChecker9And13SA(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.Pre.In[1][2] = router.PreVC{State: router.VCActive, Route: 2, OutVC: 0, BufLen: 1}
	s.SA1[1] = router.ReqGnt{Req: bitvec.New(2), Gnt: bitvec.New(2)}
	s.SA2[2] = router.ReqGnt{Req: bitvec.New(1), Gnt: bitvec.New(1)}
	s.SA2[0] = router.ReqGnt{Req: bitvec.New(1), Gnt: bitvec.New(1)}
	// Port 1 latched toward two outputs; output 0 disagrees with RC.
	s.SALatches = append(s.SALatches,
		router.SALatch{OutPort: 2, InPort: 1, InVC: 2, OutVC: 0, CreditsBefore: 5},
		router.SALatch{OutPort: 0, InPort: 1, InVC: 2, OutVC: 0, CreditsBefore: 5},
	)
	got := run(t, cfg, s)
	if !got[OneToOnePortAssignment] {
		t.Error("checker 9 silent")
	}
	if !got[SAAgreesWithRC] {
		t.Error("checker 11 silent on route disagreement")
	}
}

func TestUnitCheckers14to16Xbar(t *testing.T) {
	cfg := unitCfg()

	s := sig(cfg, 5, 100)
	s.XbarCol[2] = bitvec.New(0, 1) // two rows on one column
	s.XbarRows = bitvec.New(0, 1)
	s.XbarIn, s.XbarOut = 2, 2
	got := run(t, cfg, s)
	if !got[XbarColumnOneHot] {
		t.Error("checker 14 silent")
	}

	s = sig(cfg, 5, 100)
	s.XbarCol[2] = bitvec.New(0)
	s.XbarCol[3] = bitvec.New(0) // one row on two columns
	s.XbarRows = bitvec.New(0)
	s.XbarIn, s.XbarOut = 1, 2
	got = run(t, cfg, s)
	if !got[XbarRowOneHot] {
		t.Error("checker 15 silent")
	}
	if !got[XbarFlitConservation] {
		t.Error("checker 16 silent on duplication")
	}
}

func TestUnitChecker17InvalidState(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.Pre.In[2][3] = router.PreVC{State: router.VCState(6)} // illegal encoding
	got := run(t, cfg, s)
	if !got[ConsistentVCState] {
		t.Error("checker 17 silent on invalid state encoding")
	}
}

func TestUnitCheckers18And25to30Buffers(t *testing.T) {
	cfg := unitCfg()
	p := &flit.Packet{ID: 9, Src: 0, Dest: 5, Length: 5}
	body := p.Flits(1, 1)[1]

	// 18: body flit into a free VC.
	s := sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 2, Kind: flit.Body, VCField: 0, Strobe: bitvec.New(0), Flit: body,
		Targets: []router.WriteTarget{{VC: 0, StateBefore: router.VCIdle, ArrivedAfter: 2}},
	})
	got := run(t, cfg, s)
	if !got[HeaderOnlyInFreeVC] {
		t.Error("checker 18 silent")
	}

	// 25: write strobe on a full buffer.
	s = sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 2, Kind: flit.Body, VCField: 1, Strobe: bitvec.New(1), Flit: body,
		Targets: []router.WriteTarget{{VC: 1, FullBefore: true, StateBefore: router.VCActive}},
	})
	expectOnly(t, run(t, cfg, s), WriteToFullBuffer)

	// 24 + 29: multi-strobe read with an empty target.
	s = sig(cfg, 5, 100)
	s.Reads[1] = router.ReadSig{Strobe: bitvec.New(0, 2), EmptyBits: bitvec.New(2)}
	expectOnly(t, run(t, cfg, s), ReadFromEmptyBuffer, ConcurrentVCReads)

	// 30: multi-strobe write and zero-strobe write.
	s = sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 0, Kind: flit.Body, VCField: 0, Strobe: bitvec.New(0, 1), Flit: body,
		Targets: []router.WriteTarget{
			{VC: 0, StateBefore: router.VCActive, ArrivedAfter: 2},
			{VC: 1, StateBefore: router.VCActive, ArrivedAfter: 2},
		},
	})
	expectOnly(t, run(t, cfg, s), ConcurrentVCWrites)

	s = sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 0, Kind: flit.Body, VCField: 5, Strobe: 0, Flit: body,
	})
	expectOnly(t, run(t, cfg, s), ConcurrentVCWrites)
}

func TestUnitChecker26Atomicity(t *testing.T) {
	cfg := unitCfg()
	head := (&flit.Packet{ID: 9, Src: 0, Dest: 5, Length: 5}).Flits(1, 1)[0]
	s := sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 3, Kind: flit.Head, VCField: 2, Strobe: bitvec.New(2), Flit: head,
		Targets: []router.WriteTarget{{VC: 2, StateBefore: router.VCActive, ResidentPkt: 4, ArrivedAfter: 1}},
	})
	expectOnly(t, run(t, cfg, s), BufferAtomicity)
}

func TestUnitChecker28FlitCount(t *testing.T) {
	cfg := unitCfg()
	body := (&flit.Packet{ID: 9, Src: 0, Dest: 5, Length: 5}).Flits(1, 1)[1]
	s := sig(cfg, 5, 100)
	// Sixth flit of a five-flit class.
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 3, Kind: flit.Body, VCField: 2, Strobe: bitvec.New(2), Flit: body,
		Targets: []router.WriteTarget{{VC: 2, StateBefore: router.VCActive, ArrivedAfter: 6}},
	})
	expectOnly(t, run(t, cfg, s), PacketFlitCount)

	// Tail arriving as flit 3 of 5.
	tail := (&flit.Packet{ID: 9, Src: 0, Dest: 5, Length: 5}).Flits(1, 1)[4]
	s = sig(cfg, 5, 100)
	s.Arrivals = append(s.Arrivals, router.Arrival{
		Port: 3, Kind: flit.Tail, VCField: 2, Strobe: bitvec.New(2), Flit: tail,
		Targets: []router.WriteTarget{{VC: 2, StateBefore: router.VCActive, ArrivedAfter: 3}},
	})
	expectOnly(t, run(t, cfg, s), PacketFlitCount)
}

func TestUnitChecker31ConcurrentRC(t *testing.T) {
	cfg := unitCfg()
	s := sig(cfg, 5, 100)
	s.Pre.In[0][0] = router.PreVC{State: router.VCRouting, HasHead: true, HeadKind: flit.Head}
	s.Pre.In[0][1] = router.PreVC{State: router.VCRouting, HasHead: true, HeadKind: flit.Head}
	for v := 0; v < 2; v++ {
		// Straight-through continuation south (router 5 is (1,1); the
		// destination (1,0) lies below): legal and minimal, so only the
		// concurrency rule trips.
		s.RCExecs = append(s.RCExecs, router.RCExec{
			Port: 0, VC: v, HasHead: true, HeadKind: flit.Head,
			DestX: 1, DestY: 0, TrueDestX: 1, TrueDestY: 0, OutDir: int(topology.South),
		})
	}
	s.RCDone[0] = bitvec.New(0, 1)
	expectOnly(t, run(t, cfg, s), ConcurrentRCComplete)
}

func TestUnitChecker32Misdelivery(t *testing.T) {
	cfg := unitCfg()
	f := (&flit.Packet{ID: 9, Src: 0, Dest: 9, Length: 1}).Flits(1, 2)[0]
	s := sig(cfg, 5, 100) // ejecting at router 5, but Dest is 9
	s.XbarCol[int(topology.Local)] = bitvec.New(0)
	s.XbarRows = bitvec.New(0)
	s.XbarIn, s.XbarOut = 1, 1
	s.Departures = append(s.Departures, router.Departure{
		OutPort: int(topology.Local), OutVC: 0, InPort: 0, Flit: f,
	})
	expectOnly(t, run(t, cfg, s), EndToEndMisdelivery)
}

func TestUnitSpeculativeLatchTolerated(t *testing.T) {
	cfg := unitCfg()
	cfg.Speculative = true
	s := sig(cfg, 5, 100)
	// A speculative SA grant to a VC still waiting for VA must not trip
	// the pipeline-order rule (paper §4.4).
	s.Pre.In[1][0] = router.PreVC{State: router.VCWaitingVA, HasHead: true, HeadKind: flit.Head, Route: 2, BufLen: 1}
	s.SA1[1] = router.ReqGnt{Req: bitvec.New(0), Gnt: bitvec.New(0)}
	s.SA2[2] = router.ReqGnt{Req: bitvec.New(1), Gnt: bitvec.New(1)}
	s.SALatches = append(s.SALatches, router.SALatch{
		OutPort: 2, InPort: 1, InVC: 0, OutVC: 0, CreditsBefore: 0, Speculative: true,
	})
	expectOnly(t, run(t, cfg, s))

	// The same latch non-speculatively is a violation.
	cfg2 := unitCfg()
	s.SALatches[0].Speculative = false
	got := run(t, cfg2, s)
	if !got[ConsistentVCState] {
		t.Error("non-speculative SA on a waiting VC not flagged")
	}
}
