package core_test

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// TestRegisterSEUStranding: transient SEUs in the VC status registers
// must not strand packets silently.
func TestRegisterSEUStranding(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	params := fault.Params{Mesh: rc.Mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	silentMal := 0
	runs := 0
	for _, s := range params.EnumerateSites() {
		if !s.Kind.IsRegister() {
			continue
		}
		for b := 0; b < s.Width; b++ {
			f := fault.Fault{Site: s, Bit: b, Cycle: 400, Type: fault.Transient}
			n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.2, Seed: 17}, fault.NewPlane(f))
			eng := core.NewEngine(n.RouterConfig(), core.Options{})
			n.AttachMonitor(eng)
			n.Run(600)
			drained := n.Drain(4000)
			runs++
			if !drained && !eng.Detected() {
				silentMal++
				t.Errorf("silent stranding: %s", f.String())
			}
		}
		if runs > 400 {
			break
		}
	}
	t.Logf("%d register-SEU runs, %d silent stranding", runs, silentMal)
}
