// Package core implements NoCAlert itself: the 32 invariance checkers
// of the paper's Table 1 and the engine that runs them concurrently
// with network operation.
//
// Each checker is the software twin of a tiny combinational circuit
// tapping the inputs and outputs of one router module. A checker flags
// *functionally illegal* outputs — operational decisions no legal input
// could produce — and nothing else; erroneous-but-legal outputs pass,
// by design, because they either trigger a later checker downstream or
// prove benign at the network level (the paper's Observation 5). The
// checkers never influence the router: the engine attaches as a passive
// sim.Monitor.
package core

import (
	"fmt"

	"nocalert/internal/router"
	"nocalert/internal/sim"
)

// CheckerID numbers the invariances exactly as the paper's Table 1.
type CheckerID int

// The 32 invariances of Table 1.
const (
	IllegalTurn            CheckerID = 1  // RC: forbidden turn
	InvalidRCOutput        CheckerID = 2  // RC: impossible direction code
	NonMinimalRoute        CheckerID = 3  // RC: hop away from destination
	GrantWithoutRequest    CheckerID = 4  // arbiter: grant w/o request
	GrantToNobody          CheckerID = 5  // arbiter: requests but no winner
	GrantNotOneHot         CheckerID = 6  // arbiter: multi-hot grant vector
	GrantToOccupiedOrFull  CheckerID = 7  // allocation to busy/credit-less VC
	OneToOneVCAssignment   CheckerID = 8  // VA: VC assigned twice
	OneToOnePortAssignment CheckerID = 9  // SA: port connected twice
	VAAgreesWithRC         CheckerID = 10 // VA result vs routed output port
	SAAgreesWithRC         CheckerID = 11 // SA result vs routed output port
	IntraVAStageOrder      CheckerID = 12 // VA2 win requires VA1 win
	IntraSAStageOrder      CheckerID = 13 // SA2 win requires SA1 win
	XbarColumnOneHot       CheckerID = 14 // crossbar column multi-connected
	XbarRowOneHot          CheckerID = 15 // crossbar row multi-connected
	XbarFlitConservation   CheckerID = 16 // flits in != flits out
	ConsistentVCState      CheckerID = 17 // pipeline stages out of order
	HeaderOnlyInFreeVC     CheckerID = 18 // non-header entering a free VC
	InvalidOutputVC        CheckerID = 19 // out-of-range output VC value
	RCOnNonHeader          CheckerID = 20 // RC completed on a body/tail flit
	RCOnEmptyVC            CheckerID = 21 // RC completed on an empty buffer
	VAOnNonHeader          CheckerID = 22 // VA completed on a body/tail flit
	VAOnEmptyVC            CheckerID = 23 // VA completed on an empty buffer
	ReadFromEmptyBuffer    CheckerID = 24 // read strobe on an empty VC
	WriteToFullBuffer      CheckerID = 25 // write strobe on a full VC
	BufferAtomicity        CheckerID = 26 // header into occupied atomic VC
	NonAtomicPacketMixing  CheckerID = 27 // non-header after tail (non-atomic)
	PacketFlitCount        CheckerID = 28 // packet length != class constant
	ConcurrentVCReads      CheckerID = 29 // two reads in one port, one cycle
	ConcurrentVCWrites     CheckerID = 30 // two writes in one port, one cycle
	ConcurrentRCComplete   CheckerID = 31 // two RC completions in one port
	EndToEndMisdelivery    CheckerID = 32 // ejected flit not for this node
)

// NumCheckers is the highest checker id.
const NumCheckers = 32

var checkerNames = map[CheckerID]string{
	IllegalTurn:            "illegal turn",
	InvalidRCOutput:        "invalid RC output direction",
	NonMinimalRoute:        "non-minimal routing",
	GrantWithoutRequest:    "grant w/o request",
	GrantToNobody:          "grant to nobody",
	GrantNotOneHot:         "1-hot grant vector",
	GrantToOccupiedOrFull:  "grant to occupied or full VC",
	OneToOneVCAssignment:   "one-to-one VC assignment",
	OneToOnePortAssignment: "one-to-one port assignment",
	VAAgreesWithRC:         "VA agrees with RC",
	SAAgreesWithRC:         "SA agrees with RC",
	IntraVAStageOrder:      "intra-VA stage order",
	IntraSAStageOrder:      "intra-SA stage order",
	XbarColumnOneHot:       "1-hot column control vector",
	XbarRowOneHot:          "1-hot row control vector",
	XbarFlitConservation:   "#in flits equals #out flits",
	ConsistentVCState:      "consistent VC buffer state",
	HeaderOnlyInFreeVC:     "only header flits in free VC",
	InvalidOutputVC:        "invalid output VC value",
	RCOnNonHeader:          "complete RC on non-header flit",
	RCOnEmptyVC:            "complete RC on empty VC",
	VAOnNonHeader:          "complete VA on non-header flit",
	VAOnEmptyVC:            "complete VA on empty VC",
	ReadFromEmptyBuffer:    "read from empty buffer",
	WriteToFullBuffer:      "write to full buffer",
	BufferAtomicity:        "buffer atomicity violation",
	NonAtomicPacketMixing:  "packet mixing in non-atomic buffer",
	PacketFlitCount:        "packet flit-count violation",
	ConcurrentVCReads:      "concurrent read from multiple VCs",
	ConcurrentVCWrites:     "concurrent write to multiple VCs",
	ConcurrentRCComplete:   "concurrent RC completion",
	EndToEndMisdelivery:    "end-to-end misdelivery",
}

// String returns the checker's Table 1 description.
func (c CheckerID) String() string {
	if n, ok := checkerNames[c]; ok {
		return fmt.Sprintf("#%d %s", int(c), n)
	}
	return fmt.Sprintf("#%d", int(c))
}

// LowRisk reports whether the checker belongs to the low-risk class of
// Observation 2: invariances 1 and 3 flag RC misdirections that, when
// asserted alone, never led to network-level incorrectness in the
// paper's experiments. "NoCAlert Cautious" defers recovery when only
// low-risk checkers have fired.
func (c CheckerID) LowRisk() bool { return c == IllegalTurn || c == NonMinimalRoute }

// Violation is one assertion raised by a checker.
type Violation struct {
	Checker CheckerID
	Router  int
	Cycle   int64
	// Port and VC locate the module instance; -1 when not applicable.
	Port, VC int
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("c%d r%d p%d vc%d %v: %s", v.Cycle, v.Router, v.Port, v.VC, v.Checker, v.Detail)
}

// Options configures an Engine.
type Options struct {
	// Disabled lists checkers to leave out (ablation studies; e.g.
	// checker 27 is inapplicable with atomic buffers and self-disables
	// regardless).
	Disabled []CheckerID
	// KeepViolations retains every Violation; otherwise only counters
	// and first-detection bookkeeping are kept (campaigns run millions
	// of cycles).
	KeepViolations bool
	// MaxViolations caps retained violations when KeepViolations is
	// set; 0 means unlimited.
	MaxViolations int
}

// Engine is the NoCAlert checker fabric: it observes every router every
// cycle and raises assertions. It implements sim.Monitor.
type Engine struct {
	sim.BaseMonitor
	cfg     *router.Config
	enabled [NumCheckers + 1]bool
	opts    Options

	violations []Violation

	// Aggregates.
	total           int64                  // assertions across all checkers
	perChecker      [NumCheckers + 1]int64 // assertion-cycle counts per checker
	perCheckerAlone [NumCheckers + 1]int64 // cycles where only this checker fired
	firstCycle      int64                  // first assertion, -1 if none
	firstHighRisk   int64                  // first assertion from a non-low-risk checker
	firedSet        [NumCheckers + 1]bool  // checkers that fired at least once
	firstCycleSet   [NumCheckers + 1]bool  // checkers asserted in the first detection cycle

	// Per-cycle scratch for simultaneity accounting.
	cycleSet   [NumCheckers + 1]bool
	cycleDirty bool
	// simulHist[k] counts assertion cycles during which exactly k
	// distinct checkers fired (k >= 1).
	simulHist []int64
}

// NewEngine returns a checker engine for networks built on cfg.
func NewEngine(cfg *router.Config, opts Options) *Engine {
	e := &Engine{cfg: cfg, opts: opts, firstCycle: -1, firstHighRisk: -1}
	for i := 1; i <= NumCheckers; i++ {
		e.enabled[i] = true
	}
	// Exactly one of 26/27 applies, depending on buffer atomicity
	// (paper §4.4 and the Figure 8 footnote).
	if cfg.AtomicVC {
		e.enabled[NonAtomicPacketMixing] = false
	} else {
		e.enabled[BufferAtomicity] = false
	}
	if !cfg.Alg.Minimal() {
		e.enabled[NonMinimalRoute] = false
	}
	for _, id := range opts.Disabled {
		if id >= 1 && id <= NumCheckers {
			e.enabled[id] = false
		}
	}
	return e
}

// Enabled reports whether checker id is active.
func (e *Engine) Enabled(id CheckerID) bool {
	return id >= 1 && id <= NumCheckers && e.enabled[id]
}

// emit records a violation.
func (e *Engine) emit(id CheckerID, routerID int, cycle int64, port, vc int, format string, args ...any) {
	if !e.enabled[id] {
		return
	}
	e.total++
	e.perChecker[id]++
	e.firedSet[id] = true
	if !e.cycleSet[id] {
		e.cycleSet[id] = true
		e.cycleDirty = true
	}
	if e.firstCycle < 0 {
		e.firstCycle = cycle
	}
	if cycle == e.firstCycle {
		e.firstCycleSet[id] = true
	}
	if e.firstHighRisk < 0 && !id.LowRisk() {
		e.firstHighRisk = cycle
	}
	if e.opts.KeepViolations && (e.opts.MaxViolations == 0 || len(e.violations) < e.opts.MaxViolations) {
		e.violations = append(e.violations, Violation{
			Checker: id, Router: routerID, Cycle: cycle, Port: port, VC: vc,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// RouterCycle implements sim.Monitor: it runs every enabled checker
// against the router's signal record.
func (e *Engine) RouterCycle(r *router.Router, s *router.Signals) {
	e.checkRC(s)
	e.checkArbiters(s)
	e.checkAllocation(s)
	e.checkXbar(s)
	e.checkBuffers(s)
	e.checkPortLevel(s)
	e.checkEndToEnd(s)
}

// EndCycle implements sim.Monitor: it closes the cycle's simultaneity
// accounting.
func (e *Engine) EndCycle(cycle int64) {
	if !e.cycleDirty {
		return
	}
	k := 0
	alone := CheckerID(0)
	for i := 1; i <= NumCheckers; i++ {
		if e.cycleSet[i] {
			k++
			alone = CheckerID(i)
			e.cycleSet[i] = false
		}
	}
	e.cycleDirty = false
	for len(e.simulHist) <= k {
		e.simulHist = append(e.simulHist, 0)
	}
	e.simulHist[k]++
	if k == 1 {
		e.perCheckerAlone[alone]++
	}
}

// AccumMark is a snapshot of the engine's assertion accumulators at a
// cycle boundary; see AdvanceSteady.
type AccumMark struct {
	total      int64
	perChecker [NumCheckers + 1]int64
}

// Mark snapshots the assertion accumulators at the current boundary.
func (e *Engine) Mark() AccumMark {
	return AccumMark{total: e.total, perChecker: e.perChecker}
}

// AdvanceSteady extends the accumulators by m extra cycles of the
// assertion pattern observed since mark, which the caller guarantees
// spans exactly one simulated cycle of a state the network can never
// leave. The extrapolation is exact: every checker is a pure function
// of the router signal record (the cycle number only stamps violation
// text), so a network at a fixed point re-emits the identical
// assertion multiset each subsequent cycle — same totals, same
// per-checker counts, same simultaneity bucket. First-detection
// fields need no update: any checker asserting in the steady state
// already asserted during the observed cycle. A zero m performs only
// the feasibility check. AdvanceSteady reports whether the advance
// applies; it refuses when violation retention is on and the pattern
// is non-empty, since the retained list would need m new entries.
func (e *Engine) AdvanceSteady(mark AccumMark, m int64) bool {
	dTotal := e.total - mark.total
	if dTotal == 0 {
		return true
	}
	if e.opts.KeepViolations {
		return false
	}
	if m <= 0 {
		return true
	}
	k := 0
	alone := CheckerID(0)
	for i := 1; i <= NumCheckers; i++ {
		if d := e.perChecker[i] - mark.perChecker[i]; d > 0 {
			e.perChecker[i] += d * m
			k++
			alone = CheckerID(i)
		}
	}
	e.total += dTotal * m
	for len(e.simulHist) <= k {
		e.simulHist = append(e.simulHist, 0)
	}
	e.simulHist[k] += m
	if k == 1 {
		e.perCheckerAlone[alone] += m
	}
	return true
}

// Violations returns retained violations (KeepViolations only).
func (e *Engine) Violations() []Violation { return e.violations }

// FirstDetection returns the cycle of the first assertion, or -1.
func (e *Engine) FirstDetection() int64 { return e.firstCycle }

// FirstHighRiskDetection returns the first assertion from a checker
// outside the low-risk class (the "NoCAlert Cautious" trigger), or -1.
func (e *Engine) FirstHighRiskDetection() int64 { return e.firstHighRisk }

// Detected reports whether any checker has fired.
func (e *Engine) Detected() bool { return e.firstCycle >= 0 }

// AssertionCount returns the total number of assertions raised across
// all checkers — the quantity the metrics monitor polls per cycle.
func (e *Engine) AssertionCount() int64 { return e.total }

// CheckerCount returns the number of assertion cycles of checker id.
func (e *Engine) CheckerCount(id CheckerID) int64 { return e.perChecker[id] }

// CheckerAloneCount returns the cycles in which only checker id fired.
func (e *Engine) CheckerAloneCount(id CheckerID) int64 { return e.perCheckerAlone[id] }

// FiredCheckers returns the distinct checkers that have fired, in id
// order.
func (e *Engine) FiredCheckers() []CheckerID {
	var out []CheckerID
	for i := 1; i <= NumCheckers; i++ {
		if e.firedSet[i] {
			out = append(out, CheckerID(i))
		}
	}
	return out
}

// FirstCycleCheckers returns the checkers asserted during the first
// detection cycle (the set Figure 8's attribution uses).
func (e *Engine) FirstCycleCheckers() []CheckerID {
	var out []CheckerID
	for i := 1; i <= NumCheckers; i++ {
		if e.firstCycleSet[i] {
			out = append(out, CheckerID(i))
		}
	}
	return out
}

// SimultaneityHistogram returns hist where hist[k] is the number of
// assertion cycles with exactly k distinct checkers asserted.
func (e *Engine) SimultaneityHistogram() []int64 {
	return append([]int64(nil), e.simulHist...)
}

// OnlyLowRiskFired reports whether every assertion so far came from the
// low-risk class (invariances 1 and 3) — the condition under which the
// cautious system holds its fire (Observation 2).
func (e *Engine) OnlyLowRiskFired() bool {
	return e.Detected() && e.firstHighRisk < 0
}
