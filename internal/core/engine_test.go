package core

import (
	"strings"
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/topology"
)

func testConfig() *router.Config {
	c := router.Default(topology.NewMesh(4, 4))
	return &c
}

func TestCheckerNamesComplete(t *testing.T) {
	for id := CheckerID(1); id <= NumCheckers; id++ {
		s := id.String()
		if !strings.HasPrefix(s, "#") || len(s) < 5 {
			t.Errorf("checker %d renders %q", int(id), s)
		}
	}
	if CheckerID(99).String() != "#99" {
		t.Errorf("unknown checker renders %q", CheckerID(99).String())
	}
}

func TestLowRiskClass(t *testing.T) {
	for id := CheckerID(1); id <= NumCheckers; id++ {
		want := id == IllegalTurn || id == NonMinimalRoute
		if id.LowRisk() != want {
			t.Errorf("checker %v LowRisk = %v", id, id.LowRisk())
		}
	}
}

func TestEngineEnables(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg, Options{})
	if e.Enabled(NonAtomicPacketMixing) {
		t.Error("checker 27 enabled with atomic buffers")
	}
	if !e.Enabled(BufferAtomicity) {
		t.Error("checker 26 disabled with atomic buffers")
	}

	na := *cfg
	na.AtomicVC = false
	e2 := NewEngine(&na, Options{})
	if e2.Enabled(BufferAtomicity) || !e2.Enabled(NonAtomicPacketMixing) {
		t.Error("26/27 swap broken for non-atomic buffers")
	}

	e3 := NewEngine(cfg, Options{Disabled: []CheckerID{GrantWithoutRequest, EndToEndMisdelivery}})
	if e3.Enabled(GrantWithoutRequest) || e3.Enabled(EndToEndMisdelivery) {
		t.Error("explicit disable ignored")
	}
	if e3.Enabled(0) || e3.Enabled(NumCheckers+1) {
		t.Error("out-of-range ids report enabled")
	}
}

func TestEmitAggregation(t *testing.T) {
	e := NewEngine(testConfig(), Options{KeepViolations: true})
	// Cycle 10: checkers 4 and 17 fire (17 twice).
	e.emit(GrantWithoutRequest, 1, 10, 0, -1, "a")
	e.emit(ConsistentVCState, 1, 10, 0, 2, "b")
	e.emit(ConsistentVCState, 2, 10, 1, 0, "c")
	e.EndCycle(10)
	// Cycle 11: only checker 5.
	e.emit(GrantToNobody, 1, 11, 0, -1, "d")
	e.EndCycle(11)
	// Quiet cycle.
	e.EndCycle(12)

	if !e.Detected() || e.FirstDetection() != 10 {
		t.Fatalf("FirstDetection = %d", e.FirstDetection())
	}
	if e.FirstHighRiskDetection() != 10 {
		t.Fatalf("FirstHighRiskDetection = %d", e.FirstHighRiskDetection())
	}
	if e.CheckerCount(ConsistentVCState) != 2 || e.CheckerCount(GrantWithoutRequest) != 1 {
		t.Fatal("per-checker counts wrong")
	}
	fired := e.FiredCheckers()
	if len(fired) != 3 {
		t.Fatalf("FiredCheckers = %v", fired)
	}
	first := e.FirstCycleCheckers()
	if len(first) != 2 || first[0] != GrantWithoutRequest || first[1] != ConsistentVCState {
		t.Fatalf("FirstCycleCheckers = %v", first)
	}
	hist := e.SimultaneityHistogram()
	// hist[2] == 1 (cycle 10: two distinct checkers), hist[1] == 1.
	if len(hist) < 3 || hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("simultaneity hist = %v", hist)
	}
	if e.CheckerAloneCount(GrantToNobody) != 1 || e.CheckerAloneCount(GrantWithoutRequest) != 0 {
		t.Fatal("alone counts wrong")
	}
	if len(e.Violations()) != 4 {
		t.Fatalf("kept %d violations", len(e.Violations()))
	}
	if got := e.Violations()[0].String(); !strings.Contains(got, "#4") {
		t.Fatalf("violation renders %q", got)
	}
}

func TestLowRiskOnlyTracking(t *testing.T) {
	e := NewEngine(testConfig(), Options{})
	e.emit(IllegalTurn, 0, 5, 1, 2, "turn")
	e.EndCycle(5)
	if !e.OnlyLowRiskFired() {
		t.Fatal("low-risk-only state not recognized")
	}
	if e.FirstHighRiskDetection() != -1 {
		t.Fatal("high-risk detection set by a low-risk checker")
	}
	e.emit(NonMinimalRoute, 0, 6, 1, 2, "nonmin")
	e.EndCycle(6)
	if !e.OnlyLowRiskFired() {
		t.Fatal("both low-risk checkers should keep the cautious system quiet")
	}
	e.emit(EndToEndMisdelivery, 3, 9, 4, 0, "e2e")
	e.EndCycle(9)
	if e.OnlyLowRiskFired() || e.FirstHighRiskDetection() != 9 {
		t.Fatal("high-risk escalation broken")
	}
}

func TestDisabledCheckersNeverCount(t *testing.T) {
	e := NewEngine(testConfig(), Options{Disabled: []CheckerID{GrantWithoutRequest}})
	e.emit(GrantWithoutRequest, 0, 3, 0, -1, "suppressed")
	e.EndCycle(3)
	if e.Detected() || e.CheckerCount(GrantWithoutRequest) != 0 {
		t.Fatal("disabled checker counted")
	}
}

func TestMaxViolationsCap(t *testing.T) {
	e := NewEngine(testConfig(), Options{KeepViolations: true, MaxViolations: 2})
	for i := 0; i < 5; i++ {
		e.emit(GrantToNobody, 0, int64(i), 0, -1, "v%d", i)
		e.EndCycle(int64(i))
	}
	if len(e.Violations()) != 2 {
		t.Fatalf("kept %d violations, want 2", len(e.Violations()))
	}
	if e.CheckerCount(GrantToNobody) != 5 {
		t.Fatal("counters must keep counting past the retention cap")
	}
}
