package core_test

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// runFault runs a 3×3 network with one injected fault and returns the
// engine after the window.
func runFault(f fault.Fault) *core.Engine {
	rc := router.Default(topology.NewMesh(3, 3))
	cfg := sim.Config{Router: rc, InjectionRate: 0.25, Seed: 41}
	n := sim.MustNew(cfg, fault.NewPlane(f))
	eng := core.NewEngine(n.RouterConfig(), core.Options{})
	n.AttachMonitor(eng)
	n.Run(900)
	return eng
}

// kindFaults samples permanent faults of one signal class across sites
// and bits. Permanent faults maximize excitation, which is what a
// coverage test wants.
func kindFaults(kind fault.Kind, maxSites int) []fault.Fault {
	params := fault.Params{Mesh: topology.NewMesh(3, 3), VCs: 4, BufDepth: 5}
	var out []fault.Fault
	sites := 0
	for _, s := range params.EnumerateSites() {
		if s.Kind != kind {
			continue
		}
		sites++
		if sites > maxSites {
			break
		}
		for b := 0; b < s.Width; b++ {
			out = append(out, fault.Fault{Site: s, Bit: b, Cycle: 250, Type: fault.Permanent})
		}
	}
	return out
}

// TestCheckerCoverageByFaultKind verifies, per signal class, that
// corrupting it excites the checkers that guard it — and that across
// the whole fault model every applicable checker fires at least once
// (the paper's Figure 8 observation that no checker is dead weight).
func TestCheckerCoverageByFaultKind(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep in -short mode")
	}
	// Per-kind: at least one of the listed checkers must fire.
	anyOf := map[fault.Kind][]core.CheckerID{
		fault.RCInDestX:      {core.IllegalTurn, core.NonMinimalRoute, core.EndToEndMisdelivery},
		fault.RCInDestY:      {core.IllegalTurn, core.NonMinimalRoute, core.EndToEndMisdelivery},
		fault.RCOutDir:       {core.InvalidRCOutput, core.NonMinimalRoute},
		fault.VA1Req:         {core.ConsistentVCState, core.VAAgreesWithRC, core.VAOnNonHeader, core.VAOnEmptyVC, core.GrantWithoutRequest},
		fault.VA1Gnt:         {core.GrantWithoutRequest, core.GrantToNobody, core.GrantNotOneHot},
		fault.VA2Req:         {core.GrantWithoutRequest, core.IntraVAStageOrder, core.VAAgreesWithRC, core.GrantToNobody},
		fault.VA2Gnt:         {core.GrantWithoutRequest, core.GrantToNobody, core.GrantNotOneHot, core.IntraVAStageOrder},
		fault.VA2OutVC:       {core.InvalidOutputVC, core.GrantToOccupiedOrFull},
		fault.SA1Req:         {core.ConsistentVCState, core.SAAgreesWithRC, core.ReadFromEmptyBuffer, core.GrantWithoutRequest},
		fault.SA1Gnt:         {core.GrantWithoutRequest, core.GrantToNobody, core.GrantNotOneHot},
		fault.SA2Req:         {core.GrantWithoutRequest, core.GrantToNobody, core.IntraSAStageOrder, core.SAAgreesWithRC},
		fault.SA2Gnt:         {core.GrantWithoutRequest, core.GrantToNobody, core.IntraSAStageOrder, core.OneToOnePortAssignment},
		fault.XbarSel:        {core.XbarColumnOneHot, core.XbarRowOneHot, core.XbarFlitConservation},
		fault.BufRead:        {core.ReadFromEmptyBuffer, core.ConcurrentVCReads, core.XbarFlitConservation},
		fault.BufWrite:       {core.ConcurrentVCWrites, core.HeaderOnlyInFreeVC, core.WriteToFullBuffer, core.PacketFlitCount},
		fault.FlitKindIn:     {core.BufferAtomicity, core.HeaderOnlyInFreeVC, core.PacketFlitCount, core.RCOnNonHeader},
		fault.FlitVCIn:       {core.HeaderOnlyInFreeVC, core.BufferAtomicity, core.PacketFlitCount},
		fault.VCStateReg:     {core.ConsistentVCState, core.RCOnEmptyVC, core.VAOnEmptyVC, core.RCOnNonHeader, core.ConcurrentRCComplete},
		fault.VCRouteReg:     {core.SAAgreesWithRC, core.VAAgreesWithRC, core.IllegalTurn, core.NonMinimalRoute, core.InvalidRCOutput, core.EndToEndMisdelivery},
		fault.VCOutVCReg:     {core.InvalidOutputVC, core.GrantToOccupiedOrFull, core.BufferAtomicity},
		fault.CreditSig:      {core.WriteToFullBuffer, core.GrantToOccupiedOrFull, core.BufferAtomicity, core.PacketFlitCount},
		fault.CreditCountReg: {core.WriteToFullBuffer, core.GrantToOccupiedOrFull, core.GrantToNobody},
	}

	union := map[core.CheckerID]bool{}
	for kind, expect := range anyOf {
		fired := map[core.CheckerID]bool{}
		for _, f := range kindFaults(kind, 6) {
			eng := runFault(f)
			for _, id := range eng.FiredCheckers() {
				fired[id] = true
				union[id] = true
			}
		}
		ok := false
		for _, id := range expect {
			if fired[id] {
				ok = true
				break
			}
		}
		if !ok {
			list := make([]core.CheckerID, 0, len(fired))
			for id := range fired {
				list = append(list, id)
			}
			t.Errorf("kind %v: none of the expected checkers fired (got %v, want any of %v)",
				kind, list, expect)
		}
	}

	// Every checker applicable to the default (atomic-buffer, minimal-
	// routing) configuration must be excitable by some fault.
	for id := core.CheckerID(1); id <= core.NumCheckers; id++ {
		if id == core.NonAtomicPacketMixing {
			continue // only applicable to non-atomic buffers
		}
		if !union[id] {
			t.Errorf("checker %v never fired across the whole fault model", id)
		}
	}
}

// TestChecker27NonAtomic verifies the non-atomic counterpart: with
// non-atomic buffers, invariance 26 retires and 27 takes over; a kind
// corruption that forges a header mid-packet trips it.
func TestChecker27NonAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage sweep in -short mode")
	}
	rc := router.Default(topology.NewMesh(3, 3))
	rc.AtomicVC = false
	params := fault.Params{Mesh: rc.Mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	fired := map[core.CheckerID]bool{}
	for _, s := range params.EnumerateSites() {
		if s.Kind != fault.FlitKindIn {
			continue
		}
		for b := 0; b < s.Width; b++ {
			f := fault.Fault{Site: s, Bit: b, Cycle: 250, Type: fault.Permanent}
			cfg := sim.Config{Router: rc, InjectionRate: 0.25, Seed: 41}
			n := sim.MustNew(cfg, fault.NewPlane(f))
			eng := core.NewEngine(n.RouterConfig(), core.Options{})
			if eng.Enabled(core.BufferAtomicity) {
				t.Fatal("checker 26 enabled with non-atomic buffers")
			}
			n.AttachMonitor(eng)
			n.Run(900)
			for _, id := range eng.FiredCheckers() {
				fired[id] = true
			}
		}
	}
	if !fired[core.NonAtomicPacketMixing] {
		t.Error("checker 27 never fired with non-atomic buffers under kind corruption")
	}
}
