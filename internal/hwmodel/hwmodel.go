// Package hwmodel is the substitute for the paper's Verilog + Synopsys
// Design Compiler evaluation (§5.5): an analytical gate-equivalent (GE)
// model of the baseline router, the NoCAlert checker fabric and the
// DMR-CL comparison point, parameterized by ports, VCs, buffer depth
// and flit width.
//
// The model is structural, not fitted: each module's GE count follows
// the textbook composition of the unit (flip-flop cost per stored bit,
// mux-tree cost per selected bit, matrix-arbiter cost quadratic in its
// width, checker cost linear in the checked unit's width, after the
// paper's Figure 4). Absolute percentages therefore differ from the
// paper's 65 nm synthesis, but the Figure 10 *shape* — NoCAlert's
// overhead flat at a few percent while DMR-CL's grows steeply with VC
// count because the allocators it duplicates grow super-linearly — is
// reproduced by construction, which is the property the reproduction
// targets.
package hwmodel

import "fmt"

// Gate-equivalent cost constants (2-input NAND equivalents, standard
// rules of thumb for standard-cell mapping).
const (
	// geFlipFlop is the cost of one stored bit (D flip-flop + clock).
	geFlipFlop = 6.0
	// geSRAMBit is the cost of one buffer bit including its share of
	// the FIFO pointer, EDC and write-port logic (flit buffers dominate
	// router area in synthesized VC routers).
	geSRAMBit = 8.0
	// geMux2 is the cost of a 2:1 mux per bit.
	geMux2 = 2.5
	// geArbQuad and geArbLin compose a matrix arbiter of width n:
	// geArbQuad*n² (priority matrix + grant logic) + geArbLin*n.
	geArbQuad = 1.0
	geArbLin  = 2.0
	// geCheckPerInput is the per-input cost of an invariance checker in
	// the style of Figure 4 (two gates per input plus its share of the
	// combining OR tree).
	geCheckPerInput = 3.0
	// geComparatorBit is the per-bit cost of the DMR output comparators.
	geComparatorBit = 1.2
)

// Params fixes the router dimensions for the model.
type Params struct {
	// Ports is the router radix (5 for a mesh router).
	Ports int
	// VCs is the number of virtual channels per port.
	VCs int
	// BufDepth is the per-VC buffer depth in flits.
	BufDepth int
	// FlitWidth is the link width in bits (the paper uses 128).
	FlitWidth int
}

// Default returns the paper's hardware evaluation point (5 ports,
// 5-flit buffers, 128-bit flits) with the given VC count.
func Default(vcs int) Params {
	return Params{Ports: 5, VCs: vcs, BufDepth: 5, FlitWidth: 128}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Ports < 2 || p.VCs < 1 || p.BufDepth < 1 || p.FlitWidth < 1 {
		return fmt.Errorf("hwmodel: invalid params %+v", p)
	}
	return nil
}

// muxTree returns the GE cost of an n:1 mux over width bits.
func muxTree(n, width int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * geMux2 * float64(width)
}

// arbiter returns the GE cost of a matrix arbiter of width n.
func arbiter(n int) float64 {
	return geArbQuad*float64(n*n) + geArbLin*float64(n)
}

// Area is a GE breakdown of one router.
type Area struct {
	// Datapath.
	Buffers   float64 // input VC buffers
	Crossbar  float64 // the switch itself
	PortMuxes float64 // per-port VC input demux / output mux

	// Control logic — the surface NoCAlert protects and DMR-CL
	// duplicates.
	RC      float64 // routing computation units
	VA      float64 // virtual-channel allocator (both stages)
	SA      float64 // switch allocator (both stages)
	VCState float64 // VC state tables
	Credits float64 // credit counters and credit I/O
	XbarCtl float64 // crossbar control registers
}

// Datapath returns the datapath subtotal.
func (a Area) Datapath() float64 { return a.Buffers + a.Crossbar + a.PortMuxes }

// Control returns the control-logic subtotal.
func (a Area) Control() float64 {
	return a.RC + a.VA + a.SA + a.VCState + a.Credits + a.XbarCtl
}

// Total returns the router's full GE count.
func (a Area) Total() float64 { return a.Datapath() + a.Control() }

// Router returns the baseline router's GE breakdown following the
// canonical VC-router composition (Peh & Dally, HPCA 2001): the VA's
// second stage needs one arbiter per output VC, each of width
// Ports×VCs, which is the super-linear term that makes control logic —
// and hence DMR — blow up with VC count.
func Router(p Params) Area {
	P, V, D, W := float64(p.Ports), p.VCs, p.BufDepth, p.FlitWidth
	var a Area
	// Datapath.
	a.Buffers = P * float64(V*D*W) * geSRAMBit
	a.Crossbar = float64(p.Ports) * muxTree(p.Ports, W) // one W-bit P:1 mux per output
	a.PortMuxes = 2 * P * muxTree(V, W)                 // input demux + output mux per port

	// Control.
	// RC: per port, two coordinate comparators plus quadrant decode.
	a.RC = P * 160
	// VA1: each input VC arbitrates among the candidate output VCs of
	// its routed port (width V); VA2: one arbiter per output VC, width
	// P*V.
	a.VA = P*float64(V)*arbiter(V) + P*float64(V)*arbiter(p.Ports*V)
	// SA1: one V-wide arbiter per input port; SA2: one P-wide arbiter
	// per output port; plus per-VC credit comparators feeding SA1.
	a.SA = P*arbiter(V) + P*arbiter(p.Ports) + P*float64(V)*8
	// VC state tables: state (3b) + route (3b) + output VC (3b) +
	// bookkeeping flags (~5b) per VC.
	a.VCState = P * float64(V) * 14 * geFlipFlop
	// Credit counters: a small up/down counter per output VC plus
	// credit I/O latches.
	a.Credits = P * float64(V) * (float64(bitsFor(D))*geFlipFlop + 10)
	// Crossbar control: one P-wide one-hot register per output.
	a.XbarCtl = P * P * geFlipFlop
	return a
}

func bitsFor(max int) int {
	n, b := max, 0
	for n > 0 {
		b++
		n >>= 1
	}
	if b == 0 {
		b = 1
	}
	return b
}

// CheckerArea is the GE breakdown of the NoCAlert fabric, grouped as in
// Table 1.
type CheckerArea struct {
	RCCheckers      float64 // invariances 1–3
	ArbiterCheckers float64 // invariances 4–13
	XbarCheckers    float64 // invariances 14–16
	StateCheckers   float64 // invariances 17–28
	PortCheckers    float64 // invariances 29–31
	E2ECheckers     float64 // invariance 32
}

// Total returns the checker fabric's full GE count.
func (c CheckerArea) Total() float64 {
	return c.RCCheckers + c.ArbiterCheckers + c.XbarCheckers +
		c.StateCheckers + c.PortCheckers + c.E2ECheckers
}

// Checkers returns the NoCAlert fabric's GE breakdown. Every checker is
// linear in the width of the unit it checks — the paper's central
// hardware argument ("the checker size grows linearly with the number
// of arbiter inputs, whereas the arbiter size grows in a polynomial
// fashion").
func Checkers(p Params) CheckerArea {
	P, V := float64(p.Ports), p.VCs
	var c CheckerArea
	// RC checkers: turn-legality decode, direction-range check and a
	// coordinate comparator per port.
	c.RCCheckers = P * 60
	// Arbiter checkers: per arbiter, geCheckPerInput per request line
	// covers invariances 4–6; agreement checks (10–13) add a few gates
	// per port.
	va := P*float64(V)*geCheckPerInput*float64(V) + P*float64(V)*geCheckPerInput*float64(p.Ports*V)
	sa := P*geCheckPerInput*float64(V) + P*geCheckPerInput*float64(p.Ports)
	agree := P * float64(V) * 6
	c.ArbiterCheckers = va + sa + agree
	// Crossbar checkers: population checks over the row/column control
	// vectors plus an in/out counter comparison.
	c.XbarCheckers = P*float64(p.Ports)*geCheckPerInput + 40
	// VC-state checkers: a handful of gates per VC for the pipeline
	// order, buffer read/write and flit-count rules.
	c.StateCheckers = P * float64(V) * 10
	// Port-level checkers: population counts over V-wide strobes.
	c.PortCheckers = P * float64(V) * geCheckPerInput
	// End-to-end checker: one node-id comparator at the ejection port.
	c.E2ECheckers = 30
	return c
}

// dmrFactor is the area multiplier of DMR-CL relative to the control
// logic it duplicates: one full copy plus output comparators.
func dmrArea(p Params, base Area) float64 {
	// Comparators over the control outputs: grant vectors, routes and
	// crossbar controls, roughly 3 bits per VC per port plus per-port
	// vectors.
	cmpBits := float64(p.Ports*p.VCs*6 + p.Ports*p.Ports)
	return base.Control() + cmpBits*geComparatorBit
}

// Overhead is one Figure 10 data point.
type Overhead struct {
	Params Params
	// RouterGE is the baseline router area.
	RouterGE float64
	// CheckerGE is the NoCAlert fabric area; NoCAlertPct its relative
	// overhead.
	CheckerGE   float64
	NoCAlertPct float64
	// DMRGE is the DMR-CL added area; DMRPct its relative overhead.
	DMRGE  float64
	DMRPct float64
}

// AreaOverhead computes the Figure 10 point for the given parameters.
func AreaOverhead(p Params) Overhead {
	base := Router(p)
	chk := Checkers(p)
	dmr := dmrArea(p, base)
	return Overhead{
		Params:      p,
		RouterGE:    base.Total(),
		CheckerGE:   chk.Total(),
		NoCAlertPct: 100 * chk.Total() / base.Total(),
		DMRGE:       dmr,
		DMRPct:      100 * dmr / base.Total(),
	}
}

// Fig10Sweep evaluates the Figure 10 VC sweep (2, 4, 6, 8 VCs by
// default when vcs is nil).
func Fig10Sweep(vcs []int) []Overhead {
	if len(vcs) == 0 {
		vcs = []int{2, 4, 6, 8}
	}
	out := make([]Overhead, len(vcs))
	for i, v := range vcs {
		out[i] = AreaOverhead(Default(v))
	}
	return out
}

// Power estimates relative power in arbitrary units: gate count
// weighted by switching activity, with storage cells charged a clock
// load factor. The checkers are purely combinational (no storage), so
// their power overhead sits well below their area overhead — the
// paper's 0.3%–1.2% observation.
func Power(p Params) (routerPower, checkerPower, overheadPct float64) {
	const activity = 0.5
	const clockFactor = 2.0 // storage burns clock power every cycle
	base := Router(p)
	storage := base.Buffers + base.VCState + base.Credits + base.XbarCtl
	combinational := base.Total() - storage
	routerPower = activity*(combinational) + clockFactor*storage
	chk := Checkers(p)
	checkerPower = activity * chk.Total()
	overheadPct = 100 * checkerPower / routerPower
	return routerPower, checkerPower, overheadPct
}

// CriticalPath estimates the router's critical path in gate levels and
// the relative impact of the checker taps. The baseline path runs
// through the widest allocator stage (VA2); a checker adds one gate
// load of fan-out on the signals it taps but sits off the
// compute path, so the impact is a small wire/load penalty on one
// stage — the paper reports ≤3%, ~1% on average.
func CriticalPath(p Params) (baseLevels, withCheckersLevels, overheadPct float64) {
	// log2 levels of the widest arbiter plus request/grant
	// encode/decode stages.
	widest := p.Ports * p.VCs
	levels := 0.0
	for n := 1; n < widest; n <<= 1 {
		levels++
	}
	baseLevels = levels + 6 // request gen + grant decode + latch setup
	// Checker tap: extra fan-out on the grant nets, modelled as a
	// fraction of one gate level.
	const tapLoad = 0.12
	withCheckersLevels = baseLevels + tapLoad
	overheadPct = 100 * tapLoad / baseLevels
	return baseLevels, withCheckersLevels, overheadPct
}
