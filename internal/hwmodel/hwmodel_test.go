package hwmodel

import "testing"

// TestFig10Shape asserts the figure's qualitative content: NoCAlert's
// overhead stays in the paper's few-percent band across the VC sweep,
// while DMR-CL starts several times higher and grows steeply.
func TestFig10Shape(t *testing.T) {
	sweep := Fig10Sweep(nil)
	if len(sweep) != 4 {
		t.Fatalf("default sweep has %d points", len(sweep))
	}
	for i, o := range sweep {
		if o.Params.VCs != []int{2, 4, 6, 8}[i] {
			t.Fatalf("sweep order wrong: %+v", o.Params)
		}
		// Paper band: NoCAlert 1.38%–4.42%.
		if o.NoCAlertPct < 1.0 || o.NoCAlertPct > 5.0 {
			t.Errorf("V=%d: NoCAlert overhead %.2f%% outside the paper band", o.Params.VCs, o.NoCAlertPct)
		}
		if o.DMRPct <= o.NoCAlertPct {
			t.Errorf("V=%d: DMR (%.2f%%) not above NoCAlert (%.2f%%)", o.Params.VCs, o.DMRPct, o.NoCAlertPct)
		}
		if o.RouterGE <= 0 || o.CheckerGE <= 0 || o.DMRGE <= 0 {
			t.Errorf("V=%d: non-positive areas %+v", o.Params.VCs, o)
		}
	}
	// DMR grows steeply with VCs (paper: 5.41% → 31.32%, a 5.8× climb);
	// NoCAlert stays roughly flat (paper: "fairly constant").
	first, last := sweep[0], sweep[3]
	if last.DMRPct < 3*first.DMRPct {
		t.Errorf("DMR growth %.2f%% -> %.2f%% not steep enough", first.DMRPct, last.DMRPct)
	}
	if last.NoCAlertPct > 2*first.NoCAlertPct {
		t.Errorf("NoCAlert overhead not flat: %.2f%% -> %.2f%%", first.NoCAlertPct, last.NoCAlertPct)
	}
	// At 8 VCs the paper's gap is ~7× (31.32 vs 4.42).
	if ratio := last.DMRPct / last.NoCAlertPct; ratio < 4 {
		t.Errorf("DMR/NoCAlert ratio at 8 VCs = %.1f, want >= 4", ratio)
	}
}

// TestPowerBand: the checkers are combinational, so their power
// overhead sits below their area overhead and within the paper's
// 0.3%–1.2% band.
func TestPowerBand(t *testing.T) {
	for _, v := range []int{2, 4, 6, 8} {
		p := Default(v)
		_, _, pw := Power(p)
		area := AreaOverhead(p).NoCAlertPct
		if pw <= 0 || pw > 1.5 {
			t.Errorf("V=%d: power overhead %.2f%% outside the paper band", v, pw)
		}
		if pw >= area {
			t.Errorf("V=%d: power overhead %.2f%% not below area overhead %.2f%%", v, pw, area)
		}
	}
}

// TestCriticalPathBand: the paper reports <=3%, ~1% average.
func TestCriticalPathBand(t *testing.T) {
	total := 0.0
	for _, v := range []int{2, 4, 6, 8} {
		base, with, pct := CriticalPath(Default(v))
		if with <= base {
			t.Errorf("V=%d: checker tap added no load", v)
		}
		if pct <= 0 || pct > 3 {
			t.Errorf("V=%d: critical-path overhead %.2f%% outside the paper band", v, pct)
		}
		total += pct
	}
	if avg := total / 4; avg > 2 {
		t.Errorf("average critical-path overhead %.2f%%, paper reports ~1%%", avg)
	}
}

// TestCheckersLinearArbitersPolynomial pins the paper's Figure 4
// argument quantitatively: doubling the VC count must grow the checker
// fabric far slower than the allocators it guards.
func TestCheckersLinearArbitersPolynomial(t *testing.T) {
	a4, a8 := Router(Default(4)), Router(Default(8))
	c4, c8 := Checkers(Default(4)), Checkers(Default(8))
	arbGrowth := a8.VA / a4.VA
	chkGrowth := c8.Total() / c4.Total()
	if arbGrowth <= chkGrowth {
		t.Errorf("allocator growth %.2fx not above checker growth %.2fx", arbGrowth, chkGrowth)
	}
}

// TestAreaBreakdownConsistency: subtotals add up.
func TestAreaBreakdownConsistency(t *testing.T) {
	a := Router(Default(4))
	if a.Total() != a.Datapath()+a.Control() {
		t.Fatal("Total != Datapath + Control")
	}
	if a.Buffers <= 0 || a.Crossbar <= 0 || a.VA <= 0 || a.SA <= 0 {
		t.Fatalf("non-positive components: %+v", a)
	}
	if a.Buffers < a.Control() {
		t.Error("buffers should dominate a 128-bit 4-VC router")
	}
	c := Checkers(Default(4))
	sum := c.RCCheckers + c.ArbiterCheckers + c.XbarCheckers + c.StateCheckers + c.PortCheckers + c.E2ECheckers
	if c.Total() != sum {
		t.Fatal("checker Total mismatch")
	}
}

func TestValidate(t *testing.T) {
	if err := Default(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Ports: 1, VCs: 4, BufDepth: 5, FlitWidth: 128},
		{Ports: 5, VCs: 0, BufDepth: 5, FlitWidth: 128},
		{Ports: 5, VCs: 4, BufDepth: 0, FlitWidth: 128},
		{Ports: 5, VCs: 4, BufDepth: 5, FlitWidth: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestCustomSweep(t *testing.T) {
	sweep := Fig10Sweep([]int{3, 5})
	if len(sweep) != 2 || sweep[0].Params.VCs != 3 || sweep[1].Params.VCs != 5 {
		t.Fatalf("custom sweep wrong: %+v", sweep)
	}
}
